// Package reduce implements delta-debugging test-case reduction in the
// role C-Reduce and Berkeley Delta play in the paper (§6: "to file
// high-quality bug reports, test programs should also be reduced first").
//
// Given a program and an interestingness predicate (e.g. "this compiler
// version crashes with this signature"), the reducer repeatedly removes
// statements and declarations and simplifies expressions while the
// predicate keeps holding, converging to a 1-minimal test case.
package reduce

import (
	"spe/internal/cc"
)

// Predicate decides whether a candidate program still exhibits the symptom
// being reduced. It must be deterministic. Candidates that fail to parse
// or analyze are never passed to the predicate.
type Predicate func(prog *cc.Program) bool

// Options bounds the reduction loop.
type Options struct {
	// MaxRounds bounds full fixpoint iterations (default 8).
	MaxRounds int
	// MaxChecks bounds total predicate evaluations (default 2000).
	MaxChecks int
}

func (o Options) withDefaults() Options {
	if o.MaxRounds == 0 {
		o.MaxRounds = 8
	}
	if o.MaxChecks == 0 {
		o.MaxChecks = 2000
	}
	return o
}

// Result reports a reduction.
type Result struct {
	// Source is the reduced program text.
	Source string
	// Interesting reports whether the input satisfied the predicate at all
	// (when false, no reduction was attempted and Source echoes the input).
	Interesting bool
	// Checks counts predicate evaluations performed.
	Checks int
	// Rounds counts fixpoint iterations.
	Rounds int
	// RemovedStmts counts statements removed.
	RemovedStmts int
}

type reducer struct {
	pred    Predicate
	opts    Options
	checks  int
	removed int
}

// Reduce minimizes src while pred holds. src itself must satisfy pred
// (otherwise Reduce returns src unchanged with Checks=1).
func Reduce(src string, pred Predicate, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	r := &reducer{pred: pred, opts: opts}
	prog, ok := r.tryParse(src)
	if !ok || !r.check(prog) {
		return &Result{Source: src, Checks: r.checks}, nil
	}
	return r.run(src)
}

// ReduceProgram is Reduce for callers that already hold an analyzed
// program — the AST-resident pipeline's typed entry. The input program is
// never mutated: reduction works on a defensive clone, so passing a shared
// template (or a pooled instance's program) is safe. The initial
// interestingness check runs against the clone, sparing the re-parse that
// Reduce pays to obtain a program from text.
func ReduceProgram(prog *cc.Program, pred Predicate, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	r := &reducer{pred: pred, opts: opts}
	clone, _ := cc.CloneProgram(prog)
	src := cc.PrintFile(clone.File)
	if !r.check(clone) {
		return &Result{Source: src, Checks: r.checks}, nil
	}
	return r.run(src)
}

// run drives the reduction fixpoint from an interesting starting source.
func (r *reducer) run(src string) (*Result, error) {
	cur := src
	rounds := 0
	for rounds < r.opts.MaxRounds && r.checks < r.opts.MaxChecks {
		rounds++
		next, changed := r.round(cur)
		if !changed {
			break
		}
		cur = next
	}
	cur = r.stripEmpty(cur)
	return &Result{Source: cur, Interesting: true, Checks: r.checks, Rounds: rounds, RemovedStmts: r.removed}, nil
}

// stripEmpty removes the ';' husks left by statement omission, keeping the
// result only if the predicate still holds.
func (r *reducer) stripEmpty(src string) string {
	prog, ok := r.tryParse(src)
	if !ok {
		return src
	}
	var clean func(cc.Stmt)
	clean = func(st cc.Stmt) {
		switch st := st.(type) {
		case *cc.BlockStmt:
			kept := st.List[:0]
			for _, s := range st.List {
				if _, empty := s.(*cc.EmptyStmt); empty {
					continue
				}
				clean(s)
				kept = append(kept, s)
			}
			st.List = kept
		case *cc.IfStmt:
			clean(st.Then)
			if st.Else != nil {
				clean(st.Else)
			}
		case *cc.WhileStmt:
			clean(st.Body)
		case *cc.DoWhileStmt:
			clean(st.Body)
		case *cc.ForStmt:
			clean(st.Body)
		case *cc.LabeledStmt:
			clean(st.Stmt)
		}
	}
	for _, fd := range prog.Funcs {
		clean(fd.Body)
	}
	candidate := cc.PrintFile(prog.File)
	candProg, ok := r.tryParse(candidate)
	if !ok || !r.check(candProg) {
		return src
	}
	return candidate
}

func (r *reducer) tryParse(src string) (*cc.Program, bool) {
	f, err := cc.Parse(src)
	if err != nil {
		return nil, false
	}
	prog, err := cc.Analyze(f)
	if err != nil {
		return nil, false
	}
	return prog, true
}

func (r *reducer) check(prog *cc.Program) bool {
	r.checks++
	return r.pred(prog)
}

// round performs one pass of statement deletion over the whole program,
// greedily keeping each deletion that preserves the predicate.
func (r *reducer) round(src string) (string, bool) {
	prog, ok := r.tryParse(src)
	if !ok {
		return src, false
	}
	stmts := collectStmts(prog)
	changed := false
	cur := src
	curProg := prog
	curStmts := stmts
	for i := 0; i < len(curStmts) && r.checks < r.opts.MaxChecks; i++ {
		p := cc.Printer{Omit: map[cc.Stmt]bool{curStmts[i]: true}}
		candidate := p.File(curProg.File)
		if candidate == cur {
			continue
		}
		candProg, ok := r.tryParse(candidate)
		if !ok {
			continue
		}
		if r.check(candProg) {
			cur = candidate
			curProg = candProg
			curStmts = collectStmts(candProg)
			r.removed++
			changed = true
			i = -1 // restart over the smaller program
		}
	}
	// also try dropping whole top-level declarations
	for {
		dropped, ok := r.dropOneDecl(cur)
		if !ok || r.checks >= r.opts.MaxChecks {
			break
		}
		cur = dropped
		changed = true
	}
	return cur, changed
}

// dropOneDecl tries to remove each top-level declaration (except main).
func (r *reducer) dropOneDecl(src string) (string, bool) {
	prog, ok := r.tryParse(src)
	if !ok {
		return src, false
	}
	for i, d := range prog.File.Decls {
		if fd, isFn := d.(*cc.FuncDecl); isFn && fd.Name == "main" {
			continue
		}
		trimmed := &cc.File{
			Decls:   append(append([]cc.Decl{}, prog.File.Decls[:i]...), prog.File.Decls[i+1:]...),
			Structs: prog.File.Structs,
		}
		candidate := cc.PrintFile(trimmed)
		candProg, ok := r.tryParse(candidate)
		if !ok {
			continue
		}
		if r.check(candProg) {
			return candidate, true
		}
	}
	return src, false
}

func collectStmts(prog *cc.Program) []cc.Stmt {
	var out []cc.Stmt
	var walk func(cc.Stmt)
	walk = func(st cc.Stmt) {
		if st == nil {
			return
		}
		switch st := st.(type) {
		case *cc.BlockStmt:
			for _, s := range st.List {
				out = append(out, s)
				walk(s)
			}
		case *cc.IfStmt:
			out = append(out, st.Then)
			walk(st.Then)
			if st.Else != nil {
				out = append(out, st.Else)
				walk(st.Else)
			}
		case *cc.WhileStmt:
			walk(st.Body)
		case *cc.DoWhileStmt:
			walk(st.Body)
		case *cc.ForStmt:
			walk(st.Body)
		case *cc.LabeledStmt:
			walk(st.Stmt)
		}
	}
	for _, fd := range prog.Funcs {
		walk(fd.Body)
	}
	return out
}
