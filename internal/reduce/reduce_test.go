package reduce

import (
	"strings"
	"testing"

	"spe/internal/cc"
	"spe/internal/minicc"
)

// crashPred builds a predicate that holds when the seeded trunk compiler
// crashes with the given bug id.
func crashPred(bugID string) Predicate {
	return func(prog *cc.Program) bool {
		c := &minicc.Compiler{Version: "trunk", Opt: 3, Seeded: true}
		out := c.Compile(prog)
		return out.Crash != nil && out.Crash.BugID == bugID
	}
}

func TestReduceCrashingVariant(t *testing.T) {
	// a bloated version of the Figure 3 crasher: the reducer must strip
	// the noise while keeping the equal-operand ternary
	src := `
struct s { int c; };
struct s a, b, c;
int d; int e;
int unrelated(int x) { return x * 2 + 1; }
int noise1 = 5;
int noise2 = 6;
int main() {
    int k = 3;
    k = k + noise1;
    printf("%d\n", k);
    b.c = 1;
    c.c = 2;
    int r = e ? (d == 0 ? b : c).c : (d == 0 ? b : c).c;
    k = unrelated(k);
    printf("%d\n", r + k);
    return 0;
}
`
	res, err := Reduce(src, crashPred("69801"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RemovedStmts == 0 {
		t.Error("nothing reduced")
	}
	// the reduced program still crashes the compiler the same way
	prog := cc.MustAnalyze(res.Source)
	if !crashPred("69801")(prog) {
		t.Fatalf("reduced program no longer triggers the bug:\n%s", res.Source)
	}
	// the noise must be gone
	for _, gone := range []string{"unrelated", "noise1"} {
		if strings.Contains(res.Source, gone+"(") || strings.Contains(res.Source, gone+" =") {
			t.Errorf("reduction kept %s:\n%s", gone, res.Source)
		}
	}
	// the trigger must remain
	if !strings.Contains(res.Source, "?") {
		t.Errorf("reduction removed the ternary trigger:\n%s", res.Source)
	}
	t.Logf("reduced from %d to %d bytes in %d checks:\n%s",
		len(src), len(res.Source), res.Checks, res.Source)
}

func TestReduceWrongCodePredicate(t *testing.T) {
	// reduce a wrong-code symptom: seeded alias bug at -O2
	src := `
int a = 0;
int pad1 = 1;
int main() {
    int junk = 42;
    junk = junk + pad1;
    printf("%d\n", junk);
    a = 0;
    int *p = &a, *q = &a;
    *p = 1;
    *q = 2;
    return a;
}
`
	pred := func(prog *cc.Program) bool {
		buggy := &minicc.Compiler{Version: "trunk", Opt: 2, Seeded: true}
		good := &minicc.Compiler{Opt: 2}
		rb := buggy.Run(prog, minicc.ExecConfig{MaxSteps: 100_000})
		rg := good.Run(prog, minicc.ExecConfig{MaxSteps: 100_000})
		if !rb.Compile.Ok() || !rg.Compile.Ok() {
			return false
		}
		return rb.Exec.Exit != rg.Exec.Exit
	}
	prog := cc.MustAnalyze(src)
	if !pred(prog) {
		t.Skip("seed does not trigger the alias divergence under this configuration")
	}
	res, err := Reduce(src, pred, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !pred(cc.MustAnalyze(res.Source)) {
		t.Fatalf("reduced program lost the symptom:\n%s", res.Source)
	}
	if strings.Contains(res.Source, "junk") && strings.Contains(res.Source, "pad1") &&
		res.RemovedStmts == 0 {
		t.Errorf("no reduction achieved:\n%s", res.Source)
	}
}

func TestReduceUninterestingInput(t *testing.T) {
	src := "int main() { return 0; }"
	never := func(*cc.Program) bool { return false }
	res, err := Reduce(src, never, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != src {
		t.Error("uninteresting input was modified")
	}
	if res.Checks != 1 {
		t.Errorf("checks = %d, want 1", res.Checks)
	}
}

func TestReduceUnparsableInput(t *testing.T) {
	res, err := Reduce("int main() {", func(*cc.Program) bool { return true }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "int main() {" {
		t.Error("unparsable input was modified")
	}
}

func TestReduceRespectsCheckBudget(t *testing.T) {
	src := `
int main() {
    int a = 1;
    a = 2; a = 3; a = 4; a = 5; a = 6; a = 7; a = 8;
    return 0;
}
`
	always := func(*cc.Program) bool { return true }
	res, err := Reduce(src, always, Options{MaxChecks: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checks > 6 {
		t.Errorf("checks = %d, exceeded budget", res.Checks)
	}
}

func TestReduceIdempotentOnMinimal(t *testing.T) {
	// a minimal crasher should stay (almost) fixed under a second pass
	src := `
struct s { int c; };
struct s b, c;
int d; int e;
int main() {
    int r = e ? (d == 0 ? b : c).c : (d == 0 ? b : c).c;
    return 0;
}
`
	res1, err := Reduce(src, crashPred("69801"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Reduce(res1.Source, crashPred("69801"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.RemovedStmts > 0 {
		t.Errorf("second pass still removed %d statements:\n%s", res2.RemovedStmts, res2.Source)
	}
}

// TestReduceProgramMatchesReduce asserts the typed entry converges to the
// same reduced source as the string entry for the Figure 3 crasher.
func TestReduceProgramMatchesReduce(t *testing.T) {
	src := `
struct s { int c; };
struct s b, c;
int d; int e;
int noise = 5;
int main() {
    int k = 3;
    k = k + noise;
    int r = e ? (d == 0 ? b : c).c : (d == 0 ? b : c).c;
    printf("%d\n", r + k);
    return 0;
}
`
	fromStr, err := Reduce(src, crashPred("69801"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	fromProg, err := ReduceProgram(cc.MustAnalyze(src), crashPred("69801"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !fromProg.Interesting || !fromStr.Interesting {
		t.Fatal("crasher deemed uninteresting")
	}
	if fromProg.Source != fromStr.Source {
		t.Errorf("typed entry reduced to different source:\n--- program ---\n%s--- string ---\n%s",
			fromProg.Source, fromStr.Source)
	}
}

// TestReduceProgramNeverMutatesInput is the mutation-isolation guarantee:
// reduction must operate on a clone, so the caller's program — which in
// the campaign pipeline may alias a shared skeleton template or a pooled
// instance — comes back bit-for-bit untouched.
func TestReduceProgramNeverMutatesInput(t *testing.T) {
	src := `
struct s { int c; };
struct s b, c;
int d; int e;
int noise = 5;
int main() {
    int k = 3;
    k = k + noise;
    int r = e ? (d == 0 ? b : c).c : (d == 0 ? b : c).c;
    printf("%d\n", r + k);
    return 0;
}
`
	prog := cc.MustAnalyze(src)
	before := cc.PrintFile(prog.File)
	nDecls := len(prog.File.Decls)
	res, err := ReduceProgram(prog, crashPred("69801"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RemovedStmts == 0 {
		t.Error("nothing reduced; isolation test is weak")
	}
	if got := cc.PrintFile(prog.File); got != before {
		t.Errorf("reduction mutated the input program:\n--- after ---\n%s--- before ---\n%s", got, before)
	}
	if len(prog.File.Decls) != nDecls {
		t.Errorf("reduction dropped declarations from the input program: %d -> %d", nDecls, len(prog.File.Decls))
	}
	for i, use := range prog.Uses {
		if use.Sym == nil || use.Name != use.Sym.Name {
			t.Errorf("input use %d disturbed by reduction", i)
		}
	}
}

// TestReduceProgramUninteresting asserts the typed entry reports
// uninteresting inputs instead of echoing mutated text.
func TestReduceProgramUninteresting(t *testing.T) {
	prog := cc.MustAnalyze("int main() { return 0; }\n")
	never := func(*cc.Program) bool { return false }
	res, err := ReduceProgram(prog, never, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Interesting {
		t.Error("predicate never held but result claims interesting")
	}
	if res.Checks != 1 {
		t.Errorf("uninteresting input cost %d checks, want 1", res.Checks)
	}
}
