package refvm

import "math"

// Value kinds.
const (
	kInt uint8 = iota
	kFloat
	kPtr
)

// Value is the bytecode oracle's runtime scalar: a {kind, bits, type-index}
// word of at most 24 bytes, against the tree-walking interpreter's 56-byte
// (historically 72-byte) interface-carrying struct. Integers store their
// sign-extended payload in Bits; floats store IEEE-754 bits; pointers store
// the cell offset in Bits, the object handle in Obj (0 is the null
// pointer), and the pointee type in TIdx (pointer arithmetic scales by the
// pointee's cell count, exactly like interp.Pointer.Elem).
//
// TIdx indexes the compiled program's type table. For integer and float
// values it is normally a basic-type index (< numBasic, mirroring
// cc.BasicKind); values built from non-basic types — the zero-initializer
// quirk stores struct-typed zeros — carry that type's index and the
// arithmetic helpers treat them exactly like the tree-walker treats its
// non-basic cc.Type values: no truncation, signed, 64 bits wide.
type Value struct {
	Bits uint64
	Obj  int32
	TIdx int32
	Kind uint8
}

// vCell is one scalar memory slot of an object.
type vCell struct {
	val  Value
	init bool
}

// iOf mirrors reading the tree interpreter's Value.I: the integer payload
// for integers, zero for floats and pointers.
func iOf(v Value) int64 {
	if v.Kind != kInt {
		return 0
	}
	return int64(v.Bits)
}

// fOf mirrors Value.F: the float payload for floats, zero otherwise.
func fOf(v Value) float64 {
	if v.Kind != kFloat {
		return 0
	}
	return math.Float64frombits(v.Bits)
}

// off returns a pointer value's cell offset.
func (v Value) off() int64 { return int64(v.Bits) }

// isNull reports whether a pointer value is the null pointer.
func (v Value) isNull() bool { return v.Obj == 0 }

// typeOf mirrors reading the tree interpreter's Value.Typ, which is nil
// for pointer values: pointer typing flows through the pointee index.
func typeOf(v Value) int32 {
	if v.Kind == kPtr {
		return tidxNone
	}
	return v.TIdx
}

// isZero mirrors interp.Value.IsZero.
func (v Value) isZero() bool {
	switch v.Kind {
	case kInt:
		return v.Bits == 0
	case kFloat:
		return fOf(v) == 0
	default:
		return v.isNull()
	}
}

// mkInt builds an integer value of type ti, truncating to its width.
func (tt *typeTable) mkInt(x int64, ti int32) Value {
	return Value{Kind: kInt, Bits: uint64(tt.trunc(x, ti)), TIdx: ti}
}

// mkFloat builds a float value of type ti (float rounds through float32).
func (tt *typeTable) mkFloat(f float64, ti int32) Value {
	if ti == int32(basicFloat) {
		f = float64(float32(f))
	}
	return Value{Kind: kFloat, Bits: math.Float64bits(f), TIdx: ti}
}

// mkPtr builds a pointer value with pointee type elem.
func mkPtr(obj int32, off int64, elem int32) Value {
	return Value{Kind: kPtr, Bits: uint64(off), Obj: obj, TIdx: elem}
}
