package refvm

import (
	"fmt"
	"math/big"
	"testing"

	"spe/internal/cc"
	"spe/internal/corpus"
	"spe/internal/interp"
	"spe/internal/skeleton"
	"spe/internal/spe"
)

// These tests pin the dispatch-engine equivalence contract: the threaded
// (function-pointer handler table) and switch (monolithic opcode switch)
// engines, with and without superinstruction fusion, must return
// observationally identical Results — output bytes, exit status, abort
// flag, UB kind+position, limit presence, and step count — for every
// program, because the campaign's reports are a pure function of that
// verdict surface.

// TestDispatchEquivalence sweeps the corpus through both dispatch
// engines and compares each against the tree-walking oracle.
func TestDispatchEquivalence(t *testing.T) {
	progs := corpus.Seeds()
	n := 80
	if testing.Short() {
		n = 20
	}
	progs = append(progs, corpus.Generate(corpus.Config{N: n, Seed: 20170618})...)
	for i, src := range progs {
		prog := cc.MustAnalyze(src)
		tree := interp.Run(prog, interp.Config{})
		if err := diff(tree, Run(prog, Config{Dispatch: DispatchThreaded})); err != nil {
			t.Errorf("file[%d] threaded: %v", i, err)
		}
		if err := diff(tree, Run(prog, Config{Dispatch: DispatchSwitch})); err != nil {
			t.Errorf("file[%d] switch: %v", i, err)
		}
		if t.Failed() {
			break
		}
	}
}

// countSuperOps tallies fused superinstructions across a compiled
// program's functions.
func countSuperOps(p *program) int {
	n := 0
	count := func(fn *fnCode) {
		for i := range fn.code {
			switch fn.code[i].op {
			case opLoadVarBinop, opConstBinop, opBinopJz, opBinopJnz, opConstStore:
				n++
			}
		}
	}
	for _, fn := range p.fns {
		count(fn)
	}
	count(p.entry)
	return n
}

// TestFusionEquivalence compiles every corpus program twice — with the
// superinstruction pass on and off — and requires identical verdicts
// from both under both dispatch engines. It also asserts the pass
// actually fires: a corpus-wide zero fusion count means the pattern
// matcher silently stopped matching the compiler's output shapes.
func TestFusionEquivalence(t *testing.T) {
	progs := corpus.Seeds()
	n := 40
	if testing.Short() {
		n = 10
	}
	progs = append(progs, corpus.Generate(corpus.Config{N: n, Seed: 11})...)
	fusedOps := 0
	for i, src := range progs {
		prog := cc.MustAnalyze(src)
		fused := compileProgram(prog, nil)
		plain := compileProgramOpt(prog, nil, true)
		fusedOps += countSuperOps(fused)
		if c := countSuperOps(plain); c != 0 {
			t.Fatalf("file[%d]: noFuse compilation contains %d superinstructions", i, c)
		}
		for _, dispatch := range []string{DispatchSwitch, DispatchThreaded} {
			a := newVMState().run(plain, Config{Dispatch: dispatch})
			b := newVMState().run(fused, Config{Dispatch: dispatch})
			if err := diff(a, b); err != nil {
				t.Errorf("file[%d] %s dispatch: fused verdict diverges from unfused: %v\n--- source ---\n%s",
					i, dispatch, err, src)
			}
		}
		if t.Failed() {
			break
		}
	}
	if fusedOps == 0 {
		t.Fatal("superinstruction pass fused nothing across the whole corpus")
	}
}

// TestFusionShapes pins each superinstruction pattern individually: a
// program built around one hot pair must fuse it, and the fused program
// must still agree with the tree-walker.
func TestFusionShapes(t *testing.T) {
	cases := []struct {
		name string
		op   uint8
		src  string
	}{
		{"scalar load + binop", opLoadVarBinop, `
int main() {
    int a = 3, b = 4;
    return a + b;
}`},
		{"const + binop", opConstBinop, `
int main() {
    int a = 3;
    return a * 7;
}`},
		// In `i < 5` the const+binop pair fuses first and consumes the
		// compare, so the branch shape needs a compare whose operands are
		// themselves fused pairs.
		{"compare + jz", opBinopJz, `
int main() {
    int i = 0, n = 3;
    while (i * i < n * n) { i = i + 1; }
    return i;
}`},
		{"const + store", opConstStore, `
int main() {
    int a;
    a = 41;
    return a + 1;
}`},
	}
	for _, tc := range cases {
		prog := cc.MustAnalyze(tc.src)
		p := compileProgram(prog, nil)
		found := false
		scan := func(fn *fnCode) {
			for i := range fn.code {
				if fn.code[i].op == tc.op {
					found = true
				}
			}
		}
		for _, fn := range p.fns {
			scan(fn)
		}
		scan(p.entry)
		if !found {
			t.Errorf("%s: expected superinstruction not emitted", tc.name)
		}
		tree := interp.Run(prog, interp.Config{})
		for _, dispatch := range []string{DispatchSwitch, DispatchThreaded} {
			if err := diff(tree, newVMState().run(p, Config{Dispatch: dispatch})); err != nil {
				t.Errorf("%s (%s dispatch): %v", tc.name, dispatch, err)
			}
		}
	}
}

// TestBatchRunIdentity drives Cache.RunBatch over enumerated skeleton
// variants exactly like a campaign shard and requires each batched
// Result to be identical to a per-variant Cache.Run of the same fill —
// including Steps, UB kind and position, and output bytes — under both
// dispatch engines.
func TestBatchRunIdentity(t *testing.T) {
	progs := corpus.Seeds()
	gen := 10
	maxVariants := int64(30)
	if testing.Short() {
		gen, maxVariants = 3, 12
	}
	progs = append(progs, corpus.Generate(corpus.Config{N: gen, Seed: 7})...)

	for _, dispatch := range []string{DispatchThreaded, DispatchSwitch} {
		cfg := Config{Dispatch: dispatch}
		for fi, src := range progs {
			prog := cc.MustAnalyze(src)
			sk, err := skeleton.Build(prog)
			if err != nil {
				t.Fatalf("file[%d]: skeleton: %v", fi, err)
			}
			newSpace := func() *spe.Space {
				space, err := spe.NewSpace(sk, spe.Options{Mode: spe.ModeCanonical})
				if err != nil {
					t.Fatalf("file[%d]: space: %v", fi, err)
				}
				return space
			}
			total := newSpace().Total()
			n := maxVariants
			if total.IsInt64() && total.Int64() < n {
				n = total.Int64()
			}

			// pass 1: per-variant Cache.Run, the reference sequence
			spaceA := newSpace()
			cacheA := NewCache()
			want := make([]*interp.Result, n)
			idx := new(big.Int)
			for j := int64(0); j < n; j++ {
				idx.SetInt64(j)
				in, release, err := spaceA.AcquireAt(idx)
				if err != nil {
					t.Fatalf("file[%d] variant %d: %v", fi, j, err)
				}
				want[j] = cacheA.Run(in.Program(), in.HoleIdents(), cfg)
				release()
			}

			// pass 2: one RunBatch over the same fills
			spaceB := newSpace()
			cacheB := NewCache()
			idx.SetInt64(0)
			in, release, err := spaceB.AcquireAt(idx)
			if err != nil {
				t.Fatalf("file[%d]: acquire: %v", fi, err)
			}
			bind := func(i int) error {
				if i == 0 {
					return nil
				}
				idx.SetInt64(int64(i))
				fill, _, err := spaceB.FillDeltaAt(idx)
				if err != nil {
					return err
				}
				return in.Instantiate(fill)
			}
			yield := func(i int, res *interp.Result) error {
				if err := diff(want[i], res); err != nil {
					return fmt.Errorf("variant %d: batched verdict diverges: %w", i, err)
				}
				return nil
			}
			err = cacheB.RunBatch(in.Program(), in.HoleIdents(), cfg, int(n), bind, yield)
			release()
			if err != nil {
				t.Errorf("file[%d] (%s dispatch): %v", fi, dispatch, err)
			}
			st := cacheB.Stats()
			if st.Batches != 1 || st.BatchRuns != n {
				t.Errorf("file[%d]: batch stats = %+v, want 1 batch of %d runs", fi, st, n)
			}
			if t.Failed() {
				return
			}
		}
	}
}

// TestDispatchStats pins the per-engine run counters the campaign
// telemetry consumes.
func TestDispatchStats(t *testing.T) {
	src := corpus.Seeds()[0]
	prog := cc.MustAnalyze(src)
	sk, err := skeleton.Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	space, err := spe.NewSpace(sk, spe.Options{Mode: spe.ModeCanonical})
	if err != nil {
		t.Fatal(err)
	}
	in, release, err := space.AcquireAt(big.NewInt(0))
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ca := NewCache()
	ca.Run(in.Program(), in.HoleIdents(), Config{})
	ca.Run(in.Program(), in.HoleIdents(), Config{Dispatch: DispatchThreaded})
	ca.Run(in.Program(), in.HoleIdents(), Config{Dispatch: DispatchSwitch})
	st := ca.Stats()
	if st.ThreadedRuns != 2 || st.SwitchRuns != 1 {
		t.Errorf("dispatch counters = %+v, want 2 threaded (default + explicit) and 1 switch", st)
	}
}
