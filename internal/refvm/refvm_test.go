package refvm

import (
	"strings"
	"testing"

	"spe/internal/cc"
	"spe/internal/interp"
)

// checkSrc runs one source program through both oracles and fails on any
// verdict divergence (see diff in differential_test.go).
func checkSrc(t *testing.T, src string) *interp.Result {
	t.Helper()
	prog := cc.MustAnalyze(src)
	tree := interp.Run(prog, interp.Config{})
	bc := Run(prog, Config{})
	if err := diff(tree, bc); err != nil {
		t.Errorf("oracle divergence: %v\n--- source ---\n%s", err, src)
	}
	return bc
}

// TestEdgeCases sweeps the semantic corners that distinguish a faithful
// bytecode oracle from a merely plausible one: goto entering loop bodies,
// lazily allocated jumped-over declarations, static locals, printf's
// lazily evaluated arguments, forged pointers, and every UB kind.
func TestEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"goto into loop body", `
int main() {
    int i = 0, n = 0;
    goto mid;
    while (i < 3) {
        n = n + 10;
mid:
        n = n + 1;
        i = i + 1;
    }
    printf("%d %d\n", i, n);
    return 0;
}`},
		{"goto over decl lazy alloc", `
int main() {
    goto skip;
    int x = 5;
skip:
    x = 2;
    printf("%d\n", x);
    return 0;
}`},
		{"goto over decl uninit read", `
int main() {
    goto skip;
    int x = 5;
skip:
    printf("%d\n", x);
    return 0;
}`},
		{"goto backward", `
int main() {
    int i = 0;
top:
    i = i + 1;
    if (i < 3) goto top;
    return i;
}`},
		{"goto into for body", `
int main() {
    int i, n = 0;
    goto in;
    for (i = 0; i < 4; i = i + 1) {
        n = n + 100;
in:
        n = n + 1;
    }
    printf("%d\n", n);
    return 0;
}`},
		{"goto into do-while", `
int main() {
    int i = 0;
    goto in;
    do {
        i = i + 10;
in:
        i = i + 1;
    } while (i < 20);
    return i;
}`},
		{"static local persists", `
int counter() {
    static int n = 0;
    n = n + 1;
    return n;
}
int main() {
    counter(); counter();
    printf("%d\n", counter());
    return 0;
}`},
		{"static zero init", `
int f() { static int a[3]; return a[2]; }
int main() { return f(); }`},
		{"printf surplus args not evaluated", `
int g;
int bump() { g = g + 1; return g; }
int main() {
    printf("no conversions\n", bump(), bump());
    printf("%d\n", g);
    return 0;
}`},
		{"printf missing arg", `
int main() { printf("%d %d\n", 1); return 0; }`},
		{"printf nested", `
int main() {
    printf("a%db", printf("x"));
    return 0;
}`},
		{"printf flags and widths", `
int main() {
    printf("[%5d][%-5d][%05d][%+d][% d]\n", 42, 42, 42, 42, 42);
    printf("[%8.3f][%g][%e]\n", 3.14159, 0.0001, 12345.678);
    printf("[%x][%X][%u][%c][%s]\n", 255, 255, 7, 65, "hi");
    printf("%%literal %q unknown\n");
    return 0;
}`},
		{"printf char of float is zero", `
int main() { printf("%d:%c:", 2.5, 3.5); printf("\n"); return 0; }`},
		{"string literal identity", `
int main() {
    char *a = "dup";
    char *b = "dup";
    printf("%d %d\n", a == b, a == a);
    return 0;
}`},
		{"forged pointers distinct", `
int main() {
    int *p = (int *)5;
    int *q = (int *)5;
    printf("%d %d\n", p == q, p == p);
    return 0;
}`},
		{"forged pointer deref dangles", `
int main() { int *p = (int *)7; return *p; }`},
		{"null deref", `
int main() { int *p = 0; return *p; }`},
		{"dangling after return", `
int *f() { int x = 1; return &x; }
int main() { int *p = f(); return *p; }`},
		{"out of bounds", `
int main() { int a[3]; a[0] = 1; return a[5]; }`},
		{"one past end arithmetic ok", `
int main() { int a[3]; int *p = a + 3; return p == a + 3 ? 0 : 1; }`},
		{"past end arithmetic ub", `
int main() { int a[3]; int *p = a + 4; return 0; }`},
		{"signed overflow add", `
int main() { long x = 9223372036854775807; return (int)(x + 1); }`},
		{"int result not representable", `
int main() { int x = 2147483647; int y = x + x; return y; }`},
		{"div by zero", `
int main() { int z = 0; return 1 / z; }`},
		{"mod int_min", `
int main() { long a = -9223372036854775807 - 1; long b = -1; return (int)(a / b); }`},
		{"shift by width", `
int main() { int s = 32; return 1 << s; }`},
		{"negative shift", `
int main() { int s = -1; return 1 << s; }`},
		{"left shift negative", `
int main() { int v = -1; return v << 1; }`},
		{"uninit read", `
int main() { int x; return x; }`},
		{"missing return value used", `
int f(int x) { if (x) return 1; }
int main() { return f(0); }`},
		{"missing return value unused ok", `
int f(int x) { if (x) return 1; }
int main() { f(0); return 7; }`},
		{"struct copy", `
struct P { int x; int y; };
int main() {
    struct P a, b;
    a.x = 3; a.y = 4;
    b = a;
    printf("%d %d\n", b.x, b.y);
    return 0;
}`},
		{"struct copy uninit field", `
struct P { int x; int y; };
int main() { struct P a, b; a.x = 1; b = a; return 0; }`},
		{"nested aggregates init", `
struct Q { int a; int b[2]; };
int main() {
    struct Q q = {1, {2, 3}};
    int m[2][2] = {{1, 2}, {3}};
    printf("%d %d %d %d %d %d %d\n", q.a, q.b[0], q.b[1], m[0][0], m[0][1], m[1][0], m[1][1]);
    return 0;
}`},
		{"flat nested array init quirk", `
int main() {
    int m[2][2] = {1, 2};
    printf("%d %d %d %d\n", m[0][0], m[0][1], m[1][0], m[1][1]);
    return 0;
}`},
		{"global init order and forward ref", `
int a = 5;
int b = a + 2;
int main() { printf("%d %d\n", a, b); return 0; }`},
		{"global zero fill", `
int g[4];
double d;
int *p;
int main() { printf("%d %g %d\n", g[3], d, p == 0); return 0; }`},
		{"recursion", `
int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
int main() { printf("%d\n", fib(12)); return 0; }`},
		{"deep recursion limit", `
int f(int n) { return f(n + 1); }
int main() { return f(0); }`},
		{"step budget", `
int main() { int i = 0; while (1) { i = i + 1; } return i; }`},
		{"abort", `
int main() { printf("pre"); abort(); printf("post"); return 0; }`},
		{"exit with code", `
int main() { printf("x"); exit(42); return 0; }`},
		{"exit evaluates only first arg", `
int g;
int bump() { g = g + 1; return g; }
int main() { exit(bump()); }`},
		{"fall off main", `
int main() { printf("done\n"); }`},
		{"comma and side effects", `
int main() {
    int a = 1, b;
    b = (a = a + 1, a * 10);
    printf("%d %d\n", a, b);
    return 0;
}`},
		{"short circuit laziness", `
int g;
int tick() { g = g + 1; return 1; }
int main() {
    int r = 0 && tick();
    r = r + (1 || tick());
    printf("%d %d\n", r, g);
    return 0;
}`},
		{"ternary aggregate arms", `
struct S { int v; };
struct S x, y;
int main() {
    x.v = 10; y.v = 20;
    int k = 1;
    printf("%d\n", (k ? x : y).v);
    return 0;
}`},
		{"compound assign and incdec", `
int main() {
    int a = 5;
    a += 3; a -= 1; a *= 2; a /= 3; a %= 3;
    a = a + (a++) + (++a) + (a--) + (--a);
    unsigned char c = 250;
    c += 10;
    printf("%d %d\n", a, c);
    return 0;
}`},
		{"pointer arithmetic walk", `
int main() {
    int a[5];
    int *p = a;
    int i;
    for (i = 0; i < 5; i = i + 1) { *p = i * i; p = p + 1; }
    printf("%d %d %ld\n", a[4], *(a + 2), p - a);
    return 0;
}`},
		{"pointer comparisons", `
int main() {
    int a[4];
    int *p = a + 1, *q = a + 3;
    printf("%d %d %d\n", p < q, q <= a, p != q);
    return 0;
}`},
		{"unrelated pointer relational ub", `
int main() { int a; int b; return &a < &b; }`},
		{"pointer int conversions", `
int main() {
    int x = 3;
    long addr = (long)&x;
    printf("%d\n", addr != 0);
    return 0;
}`},
		{"float conversions and arith", `
int main() {
    float f = 0.1;
    double d = f + 1;
    int i = d * 10;
    unsigned u = 4000000000u;
    double ud = u;
    printf("%d %g %g\n", i, d, ud);
    return 0;
}`},
		{"float to int overflow", `
int main() { double d = 1e300; int i = d; return i; }`},
		{"float division by zero defined", `
int main() { double z = 0.0; printf("%g %g\n", 1.0 / z, -1.0 / z); return 0; }`},
		{"char short promotions", `
int main() {
    char c = 200;
    short s = 40000;
    unsigned short us = 65535;
    printf("%d %d %d %d\n", c, s, us, c + us);
    return 0;
}`},
		{"unsigned wraparound", `
int main() {
    unsigned int u = 0;
    u = u - 1;
    unsigned long ul = 0;
    ul = ul - 1;
    printf("%u %lu\n", u, ul);
    return 0;
}`},
		{"sizeof", `
struct S { int a; double b; };
int main() {
    int a[10];
    printf("%lu %lu %lu %lu\n", sizeof(int), sizeof(a), sizeof(struct S), sizeof(1 + 1));
    return 0;
}`},
		{"address of array element", `
int main() {
    int a[3];
    a[1] = 9;
    int *p = &a[1];
    printf("%d\n", *p);
    return 0;
}`},
		{"member through pointer", `
struct N { int v; struct N *next; };
int main() {
    struct N a, b;
    a.v = 1; b.v = 2;
    a.next = &b;
    b.next = 0;
    printf("%d\n", a.next->v);
    return 0;
}`},
		{"output after ub is discarded partial printf", `
int main() {
    int x;
    printf("kept");
    printf("lost%d", x);
    return 0;
}`},
		{"while condition steps per iteration", `
int main() {
    int i = 0;
    while (i < 5) i = i + 1;
    do i = i - 1; while (i > 0);
    for (i = 0; i < 3; i = i + 1) ;
    return i;
}`},
		{"call function with no body", `
int mystery();
int main() { return mystery(); }`},
		{"break continue", `
int main() {
    int i, n = 0;
    for (i = 0; i < 10; i = i + 1) {
        if (i == 3) continue;
        if (i == 6) break;
        n = n + i;
    }
    return n;
}`},
		{"empty statements and blocks", `
int main() { ; {} { ; ; } return 3; }`},
		{"unary minus and bitnot", `
int main() {
    int a = 5;
    unsigned char c = 4;
    printf("%d %d %d\n", -a, ~a, ~c);
    return 0;
}`},
		{"negate int_min ub", `
int main() { long m = -9223372036854775807 - 1; return (int)-m; }`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { checkSrc(t, tc.src) })
	}
}

// TestResultValues spot-checks absolute outcomes (not just agreement), so
// a bug shared by both oracles cannot hide.
func TestResultValues(t *testing.T) {
	r := checkSrc(t, `
int main() {
    int i, n = 0;
    for (i = 1; i <= 10; i = i + 1) n = n + i;
    printf("sum=%d\n", n);
    return n - 55;
}`)
	if r.Output != "sum=55\n" || r.Exit != 0 || !r.Defined() {
		t.Fatalf("got output %q exit %d defined %v", r.Output, r.Exit, r.Defined())
	}

	r = checkSrc(t, `int main() { int z = 0; return 1 / z; }`)
	if r.UB == nil || r.UB.Kind != interp.UBDivByZero {
		t.Fatalf("want div-by-zero UB, got %v", r.UB)
	}
}

// TestCacheDirtyState pins that pooled VM state never leaks between
// variants or between different programs: a run that allocates objects,
// prints, recurses, and leaves static state behind must not perturb the
// next run's verdict.
func TestCacheDirtyState(t *testing.T) {
	dirty := cc.MustAnalyze(`
int depth(int n) { if (n > 40) return n; return depth(n + 1); }
int counter() { static int c; c = c + 100; return c; }
int g[20];
int main() {
    int i;
    for (i = 0; i < 20; i = i + 1) g[i] = i;
    counter(); counter();
    printf("dirty %d %d\n", depth(0), counter());
    int *p = (int *)1234;
    return 0;
}`)
	clean := cc.MustAnalyze(`
int counter() { static int c; c = c + 1; return c; }
int main() {
    counter();
    printf("clean %d\n", counter());
    int x;
    int *p = &x;
    *p = 3;
    return x;
}`)
	ub := cc.MustAnalyze(`int main() { int x; return x; }`)

	ca := NewCache()
	fresh := func(p *cc.Program) *interp.Result { return Run(p, Config{}) }
	for round := 0; round < 3; round++ {
		for _, p := range []*cc.Program{dirty, clean, ub, clean, dirty} {
			got := ca.Run(p, nil, Config{})
			want := fresh(p)
			if err := diff(want, got); err != nil {
				t.Fatalf("round %d: pooled state leaked: %v", round, err)
			}
		}
	}
}

// TestCacheFallback pins the fresh-compile fallback: a hole rebound to a
// symbol of a different type cannot be patched in place and must still
// produce the tree-walker's verdict via fresh compilation.
func TestCacheFallback(t *testing.T) {
	prog := cc.MustAnalyze(`
int main() {
    int a = 3;
    long b = 4;
    int r = a + 1;
    printf("%d\n", r);
    return 0;
}`)
	// hand-build a "hole" over the use of a in "a + 1" and rebind it to b
	// (a long): the type differs from the compiled int shape
	var use *cc.Ident
	for _, u := range prog.Uses {
		if u.Name == "a" {
			use = u
		}
	}
	if use == nil {
		t.Fatal("no use of a found")
	}
	var bsym *cc.Symbol
	for _, s := range prog.Symbols {
		if s.Name == "b" {
			bsym = s
		}
	}
	holes := []*cc.Ident{use}
	ca := NewCache()
	r1 := ca.Run(prog, holes, Config{})
	if err := diff(interp.Run(prog, interp.Config{}), r1); err != nil {
		t.Fatalf("initial run: %v", err)
	}
	cc.RebindVar(use, bsym)
	r2 := ca.Run(prog, holes, Config{})
	if err := diff(interp.Run(prog, interp.Config{}), r2); err != nil {
		t.Fatalf("fallback run after type-changing rebind: %v", err)
	}
	if strings.Contains(r2.Output, "\x00") {
		t.Fatal("corrupt output")
	}
}
