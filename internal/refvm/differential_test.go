package refvm

import (
	"fmt"
	"math/big"
	"testing"

	"spe/internal/cc"
	"spe/internal/corpus"
	"spe/internal/interp"
	"spe/internal/skeleton"
	"spe/internal/spe"
)

// diff compares a bytecode result against the tree-walking oracle's on
// the structured verdict surface the campaign consumes: output bytes,
// exit status, abort flag, UB kind+position, limit presence, and — for
// defined runs — the step count (the campaign derives the compiled
// binary's execution budget from it).
func diff(tree, bc *interp.Result) error {
	if (tree.UB == nil) != (bc.UB == nil) {
		return fmt.Errorf("UB presence: tree %v, bytecode %v", tree.UB, bc.UB)
	}
	if tree.UB != nil {
		if tree.UB.Kind != bc.UB.Kind || tree.UB.Pos != bc.UB.Pos {
			return fmt.Errorf("UB verdict: tree %v at %v, bytecode %v at %v",
				tree.UB.Kind, tree.UB.Pos, bc.UB.Kind, bc.UB.Pos)
		}
		return nil
	}
	if (tree.Limit == nil) != (bc.Limit == nil) {
		return fmt.Errorf("limit presence: tree %v, bytecode %v", tree.Limit, bc.Limit)
	}
	if tree.Limit != nil {
		return nil
	}
	if tree.Aborted != bc.Aborted {
		return fmt.Errorf("aborted: tree %v, bytecode %v", tree.Aborted, bc.Aborted)
	}
	if tree.Exit != bc.Exit {
		return fmt.Errorf("exit: tree %d, bytecode %d", tree.Exit, bc.Exit)
	}
	if tree.Output != bc.Output {
		return fmt.Errorf("output: tree %q, bytecode %q", tree.Output, bc.Output)
	}
	if tree.Steps != bc.Steps {
		return fmt.Errorf("steps: tree %d, bytecode %d", tree.Steps, bc.Steps)
	}
	return nil
}

func checkProgram(t *testing.T, label, src string) {
	t.Helper()
	file, err := cc.Parse(src)
	if err != nil {
		t.Fatalf("%s: parse: %v", label, err)
	}
	prog, err := cc.Analyze(file)
	if err != nil {
		t.Fatalf("%s: analyze: %v", label, err)
	}
	tree := interp.Run(prog, interp.Config{})
	bc := Run(prog, Config{})
	if err := diff(tree, bc); err != nil {
		t.Errorf("%s: oracle divergence: %v\n--- source ---\n%s", label, err, src)
	}
}

// TestDifferentialCorpus sweeps the bundled seed corpus plus a generated
// population through both oracles.
func TestDifferentialCorpus(t *testing.T) {
	for i, src := range corpus.Seeds() {
		checkProgram(t, fmt.Sprintf("seed[%d]", i), src)
	}
	n := 120
	if testing.Short() {
		n = 30
	}
	for i, src := range corpus.Generate(corpus.Config{N: n, Seed: 20170618}) {
		checkProgram(t, fmt.Sprintf("gen[%d]", i), src)
	}
}

// TestDifferentialVariants drives the cached, hole-patched path: for each
// corpus file, enumerate variants through the skeleton machinery (exactly
// like a campaign worker) and compare the pooled bytecode oracle against
// the tree-walking one per variant. This is the corpus-wide equivalence
// sweep of the oracle templating discipline itself.
func TestDifferentialVariants(t *testing.T) {
	progs := corpus.Seeds()
	gen := 25
	maxVariants := int64(40)
	if testing.Short() {
		gen, maxVariants = 8, 15
	}
	progs = append(progs, corpus.Generate(corpus.Config{N: gen, Seed: 7})...)

	cache := NewCache() // shared across files, like a campaign worker's
	mach := interp.NewMachine()
	for fi, src := range progs {
		file, err := cc.Parse(src)
		if err != nil {
			t.Fatalf("file[%d]: parse: %v", fi, err)
		}
		prog, err := cc.Analyze(file)
		if err != nil {
			t.Fatalf("file[%d]: analyze: %v", fi, err)
		}
		sk, err := skeleton.Build(prog)
		if err != nil {
			t.Fatalf("file[%d]: skeleton: %v", fi, err)
		}
		space, err := spe.NewSpace(sk, spe.Options{Mode: spe.ModeCanonical})
		if err != nil {
			t.Fatalf("file[%d]: space: %v", fi, err)
		}
		total := space.Total()
		n := maxVariants
		if total.IsInt64() && total.Int64() < n {
			n = total.Int64()
		}
		idx := new(big.Int)
		for j := int64(0); j < n; j++ {
			idx.SetInt64(j)
			in, release, err := space.AcquireAt(idx)
			if err != nil {
				t.Fatalf("file[%d] variant %d: %v", fi, j, err)
			}
			vprog := in.Program()
			tree := mach.Run(vprog, interp.Config{})
			bc := cache.Run(vprog, in.HoleIdents(), Config{})
			if err := diff(tree, bc); err != nil {
				t.Errorf("file[%d] variant %d: oracle divergence: %v\n--- source ---\n%s",
					fi, j, err, cc.PrintFile(vprog.File))
				release()
				break
			}
			release()
		}
		if t.Failed() {
			break
		}
	}
}
