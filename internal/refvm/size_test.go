package refvm

import (
	"testing"
	"unsafe"
)

// TestValueSize pins the compact value word: the whole point of the
// bytecode oracle's data model is a <=24-byte {kind, bits, type-index}
// value against the tree-walker's interface-carrying struct. If a change
// grows it, pack the new field instead of raising the limit.
func TestValueSize(t *testing.T) {
	if got, max := unsafe.Sizeof(Value{}), uintptr(24); got > max {
		t.Errorf("refvm.Value is %d bytes, want <= %d", got, max)
	}
	if got, max := unsafe.Sizeof(vCell{}), uintptr(32); got > max {
		t.Errorf("refvm.vCell is %d bytes, want <= %d", got, max)
	}
	if got, max := unsafe.Sizeof(instr{}), uintptr(16); got > max {
		t.Errorf("refvm.instr is %d bytes, want <= %d", got, max)
	}
}
