package refvm

import (
	"fmt"

	"spe/internal/cc"
)

// This file lowers an analyzed cc.Program to the oracle bytecode. The
// compiler's one hard requirement is OBSERVATIONAL IDENTITY with the
// tree-walking reference interpreter (internal/interp): same output bytes,
// same exit status, same undefined-behavior verdict (kind and position),
// same abort/limit outcomes, and — because the campaign derives the
// compiled binary's step budget from the oracle's step count — the same
// Result.Steps for every defined execution. The compilation rules below
// therefore mirror interp's eval/exec recursion node for node:
//
//   - every expression/statement node contributes exactly one step, taken
//     BEFORE its children, encoded as a pre-increment on the first
//     instruction emitted under the node (instr.step);
//   - lvalue positions contribute no step for the lvalue node itself
//     (interp.machine.lvalue never calls stepNode);
//   - evalDiscard's quirks are preserved: a discarded call steps once and
//     evaluates its arguments, a discarded comma steps for its elements
//     but not for the comma node;
//   - goto compiles to a direct jump to the label's inner statement (the
//     LabeledStmt wrapper's own step sits before the jump target, so a
//     goto arrival pays one step — the inner statement's — exactly like
//     the tree-walker's seek, which skips statements without stepping);
//   - printf arguments compile as separate segments that the incremental
//     formatter jumps between, so arguments beyond the format string's
//     conversions are never evaluated (no steps, no side effects).
//
// Every label target flushes pending steps first (bindLabel), so loop
// back-edges and goto arrivals never replay a predecessor's step.

// Opcodes.
const (
	opStep uint8 = iota
	opConst
	opStr
	opLoadVar
	opAddrVar
	opLoadPtr
	opLoadPtrKeep
	opCheckPtr
	opIndexAddr
	opMemberAddr
	opBinop
	opNot
	opNeg
	opBitNot
	opIncDec
	opConv
	opJmp
	opJz
	opJnz
	opBool
	opPop
	opStoreConv
	opStructCopy
	opCallV
	opCallD
	opRetVal
	opRetNone
	opGotoEscape
	opAllocVar
	opAllocGlobal
	opInitCell
	opZeroFill
	opZeroAll
	opStaticBegin
	opStaticBind
	opPrintfBegin
	opPrintfFeed
	opPrintfNoArg
	opAbort
	opExit
	opUB
	opLimit
	opCallMain
	opHalt

	// Superinstructions: fuseCode rewrites the first opcode of a hot
	// adjacent pair in place (the second instruction stays in the stream
	// as the operand word, read via code[pc+1] and skipped with pc+=2),
	// so every jump target and call return address keeps its meaning.
	opLoadVarBinop // scalar opLoadVar + opBinop   (a = varRef; next.a = binop code)
	opConstBinop   // opConst + opBinop            (a = const;  next.a = binop code)
	opBinopJz      // opBinop + opJz               (a = binop code; next.a = target)
	opBinopJnz     // opBinop + opJnz              (a = binop code; next.a = target)
	opConstStore   // opConst + opStoreConv        (a = const;  next.a = conv tidx)

	nOps // count, sizes the threaded handler table
)

// opIncDec flag bits (instr.b).
const (
	incDec  = 1 << 0 // decrement instead of increment
	incPost = 1 << 1 // push the old value instead of the new one
	incAgg  = 1 << 2 // the loaded type is an aggregate (instr.a = elem tidx)
)

// instr is one bytecode instruction: 16 bytes, two int32 operands, a
// pre-step count, and a position-table index for UB/limit reporting.
type instr struct {
	op   uint8
	step uint8
	a    int32
	b    int32
	pos  int32
}

// binop operator codes (instr.a of opBinop): the VM's arithmetic dispatch
// switches on these directly; binopNames (same order) is kept only for
// cold-path UB message formatting.
const (
	bopAdd int32 = iota
	bopSub
	bopMul
	bopDiv
	bopMod
	bopShl
	bopShr
	bopAnd
	bopOr
	bopXor
	bopEq
	bopNe
	bopLt
	bopGt
	bopLe
	bopGe
)

var binopNames = []string{"+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^", "==", "!=", "<", ">", "<=", ">="}

var binopCode = func() map[string]int32 {
	m := make(map[string]int32, len(binopNames))
	for i, s := range binopNames {
		m[s] = int32(i)
	}
	return m
}()

// varRef is the side-table entry behind opLoadVar/opAddrVar: which slot
// the referenced variable lives in, and what to allocate if the slot is
// still empty (the tree-walker's lazy allocation for declarations jumped
// over by goto). Hole patching rewrites these entries in place — they are
// the bytecode analogue of minicc's IR patch sites.
type varRef struct {
	global bool
	slot   int32
	allocT int32 // sym.Type, for lazy allocation
	elem   int32 // elemOf(sym.Type), the address-of/decay pointee
	name   int32
}

// declInfo backs opAllocVar/opAllocGlobal.
type declInfo struct {
	slot   int32
	allocT int32
	name   int32
}

// staticInfo backs opStaticBegin/opStaticBind.
type staticInfo struct {
	sslot  int32 // static slot (persists across calls within a run)
	lslot  int32 // frame slot the static binds into
	allocT int32
	name   int32
}

// paramInfo describes one function parameter for the call sequence.
type paramInfo struct {
	slot   int32 // -1: parameter has no symbol, allocate but don't bind
	allocT int32
	convT  int32 // valueType(param type): argument conversion target
	zero   int32 // const index of zeroOf(convT), for missing arguments
	name   int32
}

// fnCode is one compiled function. handlers is the threaded-dispatch
// function-pointer table, parallel to code, built once at compile time
// (specialized per instruction where operand kinds are provable).
type fnCode struct {
	name     string
	code     []instr
	handlers []opFunc
	params   []paramInfo
	nslots   int32
}

// program is a compiled translation unit plus its side tables. The varRefs
// table is deliberately mutable: hole patching rewrites entries between
// runs, everything else is immutable after compilation.
type program struct {
	tt      *typeTable
	fns     []*fnCode
	entry   *fnCode // global initialization + call-main sequence
	consts  []Value
	varRefs []varRef
	decls   []declInfo
	statics []staticInfo
	strs    []string
	names   []string
	msgs    []string
	poss    []cc.Pos

	nGlobals int32
	nStatics int32
	mainFn   int32 // -1 when the program has no main

	nameForged int32
	nameStrlit int32
	nameIdx    map[string]int32

	// slotOf/gslotOf expose the deterministic symbol-to-slot assignment
	// (dense by Symbol.ID) for hole patching.
	slotOf  []int32
	gslotOf []int32

	// hole metadata (empty when compiled without hole tracking): for each
	// hole, the varRef indices its use compiled into, and the interned
	// type every candidate symbol must match for in-place patching.
	holeSites [][]int32
	holeT     []int32
}

type gotoFix struct {
	at    int
	label string
}

type compiler struct {
	p      *program
	prog   *cc.Program
	holeOf map[*cc.Ident]int

	// symbol slot assignment, dense by Symbol.ID
	slotOf  []int32
	gslotOf []int32
	sslotOf []int32
	fnIdxOf map[string]int32

	// interning memos
	posIdx   map[cc.Pos]int32
	constIdx map[Value]int32
	nameIdx  map[string]int32
	msgIdx   map[string]int32
	strIdx   map[*cc.StringLit]int32
	declIdx  map[*cc.VarDecl]int32
	statIdx  map[*cc.VarDecl]int32

	// current function state
	code          []instr
	pending       int
	breaks        []*[]int
	conts         []*[]int
	pendingBreaks []int
	labels        map[string]int
	gotos         []gotoFix
}

// compileProgram lowers prog. holes, when non-nil, are the skeleton's
// hole use-sites (skeleton.Instance.HoleIdents): the compiler records the
// varRef entries each hole feeds so Cache can patch rebindings in place.
func compileProgram(prog *cc.Program, holes []*cc.Ident) *program {
	return compileProgramOpt(prog, holes, false)
}

// compileProgramOpt additionally exposes the superinstruction fuser as a
// switch (noFuse) so tests can pin fused against unfused execution.
func compileProgramOpt(prog *cc.Program, holes []*cc.Ident, noFuse bool) *program {
	c := &compiler{
		p:        &program{tt: newTypeTable(), mainFn: -1},
		prog:     prog,
		holeOf:   make(map[*cc.Ident]int, len(holes)),
		fnIdxOf:  make(map[string]int32),
		posIdx:   make(map[cc.Pos]int32),
		constIdx: make(map[Value]int32),
		nameIdx:  make(map[string]int32),
		msgIdx:   make(map[string]int32),
		strIdx:   make(map[*cc.StringLit]int32),
		declIdx:  make(map[*cc.VarDecl]int32),
		statIdx:  make(map[*cc.VarDecl]int32),
	}
	for i, id := range holes {
		c.holeOf[id] = i
	}
	c.p.holeSites = make([][]int32, len(holes))
	c.p.holeT = make([]int32, len(holes))
	c.p.nameForged = c.name("forged")
	c.p.nameStrlit = c.name("strlit")

	// slot assignment, in Symbol.ID order so it is deterministic and so
	// object allocation order (hence object IDs, which are program-visible
	// through pointer-to-int conversion and %p) matches the tree-walker.
	nsyms := len(prog.Symbols)
	c.slotOf = make([]int32, nsyms)
	c.gslotOf = make([]int32, nsyms)
	c.sslotOf = make([]int32, nsyms)
	perFn := make(map[int]int32)
	for _, sym := range prog.Symbols {
		if sym.FuncIdx < 0 {
			c.gslotOf[sym.ID] = c.p.nGlobals
			c.p.nGlobals++
		} else {
			c.slotOf[sym.ID] = perFn[sym.FuncIdx]
			perFn[sym.FuncIdx]++
		}
		if sym.Storage == cc.StorageStatic {
			c.sslotOf[sym.ID] = c.p.nStatics
			c.p.nStatics++
		}
	}

	// functions (bodies only: sema already excludes prototypes). The name
	// map mirrors the tree-walker's funcs map: later definitions shadow
	// earlier ones.
	for i, fd := range prog.Funcs {
		c.fnIdxOf[fd.Name] = int32(i)
	}
	for fi, fd := range prog.Funcs {
		fn := &fnCode{name: fd.Name, nslots: perFn[fi]}
		for _, prm := range fd.Params {
			pi := paramInfo{slot: -1, allocT: c.tidx(prm.Type), name: c.name(prm.Name)}
			vt := scalarTypeOf(prm.Type)
			pi.convT = c.tidx(vt)
			pi.zero = c.constOf(c.zeroOf(vt))
			if prm.Sym != nil {
				pi.slot = c.slotOf[prm.Sym.ID]
			}
			fn.params = append(fn.params, pi)
		}
		c.beginFunc()
		// the body block itself is never exec'd (machine.call passes it
		// straight to execBlock), so it contributes no step of its own
		for _, s := range fd.Body.List {
			c.compileStmt(s)
		}
		c.emit(opRetNone, 0, 0, fd.Pos)
		c.finishFunc()
		fn.code = c.code
		c.p.fns = append(c.p.fns, fn)
	}
	if mi, ok := c.fnIdxOf["main"]; ok {
		c.p.mainFn = mi
	}

	// entry: global initialization in declaration order, then main.
	c.beginFunc()
	for _, d := range prog.File.Decls {
		if vd, ok := d.(*cc.VarDecl); ok {
			c.compileGlobalDecl(vd)
		}
	}
	c.emit(opCallMain, 0, 0, cc.Pos{})
	c.emit(opHalt, 0, 0, cc.Pos{})
	c.p.entry = &fnCode{name: "<entry>", code: c.code}
	c.p.nameIdx = c.nameIdx
	c.p.slotOf = c.slotOf
	c.p.gslotOf = c.gslotOf
	if !noFuse {
		for _, fn := range c.p.fns {
			fuseCode(c.p, fn)
		}
		fuseCode(c.p, c.p.entry)
	}
	// handler tables come last: they specialize on the final instruction
	// stream (post-fusion) and the complete varRefs table.
	buildHandlers(c.p)
	return c.p
}

// internName interns a name post-compilation (hole patching may introduce
// candidate symbols whose names the original filling never printed).
func (p *program) internName(s string) int32 {
	if i, ok := p.nameIdx[s]; ok {
		return i
	}
	i := int32(len(p.names))
	p.names = append(p.names, s)
	p.nameIdx[s] = i
	return i
}

// ---------------------------------------------------------------- interning

func (c *compiler) tidx(t cc.Type) int32 { return c.p.tt.intern(t) }

func (c *compiler) pos(p cc.Pos) int32 {
	if i, ok := c.posIdx[p]; ok {
		return i
	}
	i := int32(len(c.p.poss))
	c.p.poss = append(c.p.poss, p)
	c.posIdx[p] = i
	return i
}

func (c *compiler) constOf(v Value) int32 {
	if i, ok := c.constIdx[v]; ok {
		return i
	}
	i := int32(len(c.p.consts))
	c.p.consts = append(c.p.consts, v)
	c.constIdx[v] = i
	return i
}

func (c *compiler) name(s string) int32 {
	if i, ok := c.nameIdx[s]; ok {
		return i
	}
	i := int32(len(c.p.names))
	c.p.names = append(c.p.names, s)
	c.nameIdx[s] = i
	return i
}

func (c *compiler) msg(s string) int32 {
	if i, ok := c.msgIdx[s]; ok {
		return i
	}
	i := int32(len(c.p.msgs))
	c.p.msgs = append(c.p.msgs, s)
	c.msgIdx[s] = i
	return i
}

// zeroOf mirrors interp's zeroOf, quirks included: the zero of a struct
// scalar-type is an INTEGER value carrying the struct's type index.
func (c *compiler) zeroOf(t cc.Type) Value {
	ti := c.tidx(t)
	if isFloatTidx(ti) {
		return c.p.tt.mkFloat(0, ti)
	}
	if pt, ok := t.(*cc.PointerType); ok {
		return mkPtr(0, 0, c.tidx(pt.Elem))
	}
	return c.p.tt.mkInt(0, ti)
}

// ---------------------------------------------------------------- emission

func (c *compiler) beginFunc() {
	c.code = nil
	c.pending = 0
	c.breaks = nil
	c.conts = nil
	c.labels = make(map[string]int)
	c.gotos = nil
}

// step schedules one evaluation step (interp's stepNode) to be charged by
// the next emitted instruction.
func (c *compiler) step() { c.pending++ }

func (c *compiler) emit(op uint8, a, b int32, pos cc.Pos) int {
	for c.pending > 255 {
		c.code = append(c.code, instr{op: opStep, step: 255})
		c.pending -= 255
	}
	c.code = append(c.code, instr{op: op, step: uint8(c.pending), a: a, b: b, pos: c.pos(pos)})
	c.pending = 0
	return len(c.code) - 1
}

// bindLabel returns the current address as a jump target, flushing pending
// steps first so arriving via the target never replays them.
func (c *compiler) bindLabel() int {
	if c.pending > 0 {
		for c.pending > 255 {
			c.code = append(c.code, instr{op: opStep, step: 255})
			c.pending -= 255
		}
		c.code = append(c.code, instr{op: opStep, step: uint8(c.pending)})
		c.pending = 0
	}
	return len(c.code)
}

func (c *compiler) patch(at int, target int) { c.code[at].a = int32(target) }

func (c *compiler) emitUB(kind int32, msg string, pos cc.Pos) {
	c.emit(opUB, kind, c.msg(msg), pos)
}

// finishFunc resolves goto fixups: labels compile to direct jumps, gotos
// to labels the function does not contain become the tree-walker's
// "escaped function" UB at the frame's call position.
func (c *compiler) finishFunc() {
	for _, g := range c.gotos {
		in := &c.code[g.at]
		if addr, ok := c.labels[g.label]; ok {
			in.op = opJmp
			in.a = int32(addr)
		} else {
			in.op = opGotoEscape
			in.a = c.name(g.label)
		}
	}
}

// ---------------------------------------------------------------- statements

func (c *compiler) compileStmt(st cc.Stmt) {
	c.step() // exec's stepNode, charged before any child
	switch st := st.(type) {
	case *cc.BlockStmt:
		for _, s := range st.List {
			c.compileStmt(s)
		}
	case *cc.DeclStmt:
		for _, d := range st.Decls {
			c.compileLocalDecl(d)
		}
	case *cc.ExprStmt:
		c.compileDiscard(st.X)
	case *cc.EmptyStmt:
		// the step rides on the next instruction
	case *cc.IfStmt:
		c.compileExpr(st.Cond)
		jz := c.emit(opJz, 0, 0, st.Pos)
		c.compileStmt(st.Then)
		if st.Else != nil {
			jend := c.emit(opJmp, 0, 0, st.Pos)
			c.patch(jz, c.bindLabel())
			c.compileStmt(st.Else)
			c.patch(jend, c.bindLabel())
		} else {
			c.patch(jz, c.bindLabel())
		}
	case *cc.WhileStmt:
		lcond := c.bindLabel()
		c.compileExpr(st.Cond)
		jz := c.emit(opJz, 0, 0, st.Pos)
		c.loopBody(st.Body, lcond, st.Pos)
		c.patch(jz, c.bindLabel())
		c.patchBreaks(len(c.code))
	case *cc.DoWhileStmt:
		lbody := c.bindLabel()
		brks, cnts := c.pushLoop()
		c.compileStmt(st.Body)
		lcond := c.bindLabel()
		c.compileExpr(st.Cond)
		c.emit(opJnz, int32(lbody), 0, st.Pos)
		c.popLoop(brks, cnts, len(c.code), lcond)
	case *cc.ForStmt:
		if st.Init != nil {
			c.compileStmt(st.Init)
		}
		lcond := c.bindLabel()
		jz := -1
		if st.Cond != nil {
			c.compileExpr(st.Cond)
			jz = c.emit(opJz, 0, 0, st.Pos)
		}
		brks, cnts := c.pushLoop()
		c.compileStmt(st.Body)
		lpost := c.bindLabel()
		if st.Post != nil {
			c.compileDiscard(st.Post)
		}
		c.emit(opJmp, int32(lcond), 0, st.Pos)
		lend := c.bindLabel()
		if jz >= 0 {
			c.patch(jz, lend)
		}
		c.popLoop(brks, cnts, lend, lpost)
	case *cc.ReturnStmt:
		if st.X != nil {
			c.compileExpr(st.X)
			c.emit(opRetVal, 0, 0, st.Pos)
		} else {
			c.emit(opRetNone, 0, 0, st.Pos)
		}
	case *cc.BreakStmt:
		// a break with no enclosing loop unwinds to the function end in
		// the tree-walker (no flow handler consumes it), i.e. a valueless
		// return; inside a loop it jumps to the loop end.
		if n := len(c.breaks); n > 0 {
			at := c.emit(opJmp, 0, 0, st.Pos)
			*c.breaks[n-1] = append(*c.breaks[n-1], at)
		} else {
			c.emit(opRetNone, 0, 0, st.Pos)
		}
	case *cc.ContinueStmt:
		if n := len(c.conts); n > 0 {
			at := c.emit(opJmp, 0, 0, st.Pos)
			*c.conts[n-1] = append(*c.conts[n-1], at)
		} else {
			c.emit(opRetNone, 0, 0, st.Pos)
		}
	case *cc.GotoStmt:
		at := c.emit(opJmp, 0, 0, st.Pos)
		c.gotos = append(c.gotos, gotoFix{at: at, label: st.Label})
	case *cc.LabeledStmt:
		// the wrapper's step flushes BEFORE the jump target: goto arrival
		// pays only the inner statement's step, exactly like the
		// tree-walker's seek mode, while normal fall-through pays both.
		addr := c.bindLabel()
		if _, exists := c.labels[st.Label]; !exists {
			// first declaration wins, like the tree-walker's findLabel
			c.labels[st.Label] = addr
		}
		c.compileStmt(st.Stmt)
	default:
		panic(fmt.Sprintf("refvm: unknown statement %T", st))
	}
}

func (c *compiler) pushLoop() (*[]int, *[]int) {
	brks, cnts := new([]int), new([]int)
	c.breaks = append(c.breaks, brks)
	c.conts = append(c.conts, cnts)
	return brks, cnts
}

func (c *compiler) popLoop(brks, cnts *[]int, breakTo, contTo int) {
	c.breaks = c.breaks[:len(c.breaks)-1]
	c.conts = c.conts[:len(c.conts)-1]
	for _, at := range *brks {
		c.patch(at, breakTo)
	}
	for _, at := range *cnts {
		c.patch(at, contTo)
	}
}

// loopBody compiles a while-style body whose continue target is the
// condition label; break fixups are stashed in pendingBreaks because the
// break target is only known after the caller patches the cond's jz.
func (c *compiler) loopBody(body cc.Stmt, lcond int, pos cc.Pos) {
	brks, cnts := c.pushLoop()
	c.compileStmt(body)
	c.emit(opJmp, int32(lcond), 0, pos)
	c.breaks = c.breaks[:len(c.breaks)-1]
	c.conts = c.conts[:len(c.conts)-1]
	for _, at := range *cnts {
		c.patch(at, lcond)
	}
	c.pendingBreaks = *brks
}

func (c *compiler) patchBreaks(target int) {
	for _, at := range c.pendingBreaks {
		c.patch(at, target)
	}
	c.pendingBreaks = nil
}

// ---------------------------------------------------------------- decls

func (c *compiler) declFor(d *cc.VarDecl) int32 {
	if i, ok := c.declIdx[d]; ok {
		return i
	}
	i := int32(len(c.p.decls))
	slot := c.slotOf[d.Sym.ID]
	if d.Sym.FuncIdx < 0 {
		slot = c.gslotOf[d.Sym.ID]
	}
	c.p.decls = append(c.p.decls, declInfo{slot: slot, allocT: c.tidx(d.Sym.Type), name: c.name(d.Name)})
	c.declIdx[d] = i
	return i
}

func (c *compiler) compileLocalDecl(d *cc.VarDecl) {
	if d.Storage == cc.StorageStatic {
		si, ok := c.statIdx[d]
		if !ok {
			si = int32(len(c.p.statics))
			c.p.statics = append(c.p.statics, staticInfo{
				sslot:  c.sslotOf[d.Sym.ID],
				lslot:  c.slotOf[d.Sym.ID],
				allocT: c.tidx(d.Sym.Type),
				name:   c.name(d.Name),
			})
			c.statIdx[d] = si
		}
		begin := c.emit(opStaticBegin, si, 0, d.Pos)
		if d.Init != nil {
			c.compileInit(d.Sym.Type, d.Init)
		} else {
			c.emit(opZeroAll, c.constOf(c.zeroOf(scalarTypeOf(d.Sym.Type))), 0, d.Pos)
		}
		c.emit(opPop, 0, 0, d.Pos)
		c.code[begin].b = int32(c.bindLabel())
		c.emit(opStaticBind, si, 0, d.Pos)
		return
	}
	di := c.declFor(d)
	if d.Init == nil {
		c.emit(opAllocVar, di, 0, d.Pos)
		return
	}
	c.emit(opAllocVar, di, 1, d.Pos)
	c.compileInit(d.Sym.Type, d.Init)
	c.emit(opPop, 0, 0, d.Pos)
}

func (c *compiler) compileGlobalDecl(d *cc.VarDecl) {
	di := c.declFor(d)
	c.emit(opAllocGlobal, di, 1, d.Pos)
	if d.Init != nil {
		c.compileInit(d.Sym.Type, d.Init)
	} else {
		// file-scope objects are zero-initialized in C
		c.emit(opZeroAll, c.constOf(c.zeroOf(scalarTypeOf(d.Sym.Type))), 0, d.Pos)
	}
	c.emit(opPop, 0, 0, d.Pos)
}

// compileInit mirrors interp's initObject against the object pointer on
// the stack (left there; the caller pops it).
func (c *compiler) compileInit(t cc.Type, init cc.Expr) {
	if il, ok := init.(*cc.InitList); ok {
		c.compileInitCells(t, il, 0)
		// C zero-fills the remainder of a partially initialized aggregate
		c.emit(opZeroFill, c.constOf(c.zeroOf(scalarTypeOf(t))), 0, il.Pos)
		return
	}
	c.compileExpr(init)
	c.emit(opInitCell, c.tidx(scalarTypeOf(t)), 0, init.NodePos())
}

// compileInitCells mirrors interp's initCells, including the mid-list
// excess-initializer UB (which fires after the preceding elements have
// been evaluated, so the trap is emitted in sequence).
func (c *compiler) compileInitCells(t cc.Type, il *cc.InitList, off int) {
	switch t := t.(type) {
	case *cc.ArrayType:
		elemCells := cellCount(t.Elem)
		for i, e := range il.List {
			if i >= t.Len {
				c.emitUB(int32(ubOutOfBounds), "excess array initializers", il.Pos)
				return
			}
			if sub, ok := e.(*cc.InitList); ok {
				c.compileInitCells(t.Elem, sub, off+i*elemCells)
			} else {
				c.compileExpr(e)
				c.emit(opInitCell, c.tidx(scalarTypeOf(t.Elem)), int32(off+i*elemCells), e.NodePos())
			}
		}
	case *cc.StructType:
		fo := off
		for i, e := range il.List {
			if i >= len(t.Fields) {
				c.emitUB(int32(ubOutOfBounds), "excess struct initializers", il.Pos)
				return
			}
			ft := t.Fields[i].Type
			if sub, ok := e.(*cc.InitList); ok {
				c.compileInitCells(ft, sub, fo)
			} else {
				c.compileExpr(e)
				c.emit(opInitCell, c.tidx(scalarTypeOf(ft)), int32(fo), e.NodePos())
			}
			fo += cellCount(ft)
		}
	default:
		if len(il.List) != 1 {
			c.emitUB(int32(ubOutOfBounds), "scalar initializer list", il.Pos)
			return
		}
		c.compileExpr(il.List[0])
		c.emit(opInitCell, c.tidx(scalarTypeOf(t)), int32(off), il.Pos)
	}
}

// ---------------------------------------------------------------- expressions

func (c *compiler) compileExpr(e cc.Expr) {
	c.step() // eval's stepNode, charged before any child
	switch e := e.(type) {
	case *cc.Ident:
		c.emitVarUse(e, opLoadVar)
	case *cc.IntLit:
		c.emit(opConst, c.constOf(c.p.tt.mkInt(e.Val, c.tidx(e.Type))), 0, e.Pos)
	case *cc.FloatLit:
		c.emit(opConst, c.constOf(c.p.tt.mkFloat(e.Val, c.tidx(e.Type))), 0, e.Pos)
	case *cc.CharLit:
		c.emit(opConst, c.constOf(c.p.tt.mkInt(int64(e.Val), basicInt)), 0, e.Pos)
	case *cc.StringLit:
		c.emit(opStr, c.strOf(e), 0, e.Pos)
	case *cc.BinaryExpr:
		c.compileBinary(e)
	case *cc.AssignExpr:
		c.compileAssign(e)
	case *cc.UnaryExpr:
		c.compileUnary(e)
	case *cc.PostfixExpr:
		c.compileLvalue(e.X)
		c.emitIncDec(e.Op, e.X, true, e.Pos)
	case *cc.CondExpr:
		c.compileExpr(e.Cond)
		jz := c.emit(opJz, 0, 0, e.Pos)
		c.compileBranch(e.T)
		jend := c.emit(opJmp, 0, 0, e.Pos)
		c.patch(jz, c.bindLabel())
		c.compileBranch(e.F)
		c.patch(jend, c.bindLabel())
	case *cc.CallExpr:
		c.compileCall(e, true)
	case *cc.IndexExpr:
		c.compileLvalue(e)
		c.emitLoadPtr(opLoadPtr, e.ExprType(), e.NodePos())
	case *cc.MemberExpr:
		c.compileLvalue(e)
		c.emitLoadPtr(opLoadPtr, e.ExprType(), e.NodePos())
	case *cc.CastExpr:
		c.compileExpr(e.X)
		c.emit(opConv, c.tidx(e.To), 0, e.Pos)
	case *cc.SizeofExpr:
		t := e.OfType
		if t == nil && e.X != nil {
			t = e.X.ExprType()
		}
		if t == nil {
			t = cc.TypeInt
		}
		c.emit(opConst, c.constOf(c.p.tt.mkInt(int64(t.Size()), basicULong)), 0, e.Pos)
	case *cc.CommaExpr:
		for i, x := range e.List {
			if i == len(e.List)-1 {
				c.compileExpr(x)
			} else {
				c.compileDiscard(x)
			}
		}
	default:
		panic(fmt.Sprintf("refvm: unknown expression %T", e))
	}
}

// compileDiscard mirrors evalDiscard: a discarded call steps once and
// tolerates a missing return value; a discarded comma steps for its
// elements only; everything else evaluates and pops.
func (c *compiler) compileDiscard(e cc.Expr) {
	if call, ok := e.(*cc.CallExpr); ok {
		c.step()
		c.compileCall(call, false)
		return
	}
	if comma, ok := e.(*cc.CommaExpr); ok {
		for _, x := range comma.List {
			c.compileDiscard(x)
		}
		return
	}
	c.compileExpr(e)
	c.emit(opPop, 0, 0, e.NodePos())
}

// compileBranch compiles one conditional arm: aggregate-typed arms yield
// their storage pointer (evalBranch).
func (c *compiler) compileBranch(e cc.Expr) {
	if isAggregate(e.ExprType()) {
		c.compileLvalue(e)
		return
	}
	c.compileExpr(e)
}

func isAggregate(t cc.Type) bool {
	switch t.(type) {
	case *cc.StructType, *cc.ArrayType:
		return true
	}
	return false
}

func (c *compiler) compileBinary(e *cc.BinaryExpr) {
	switch e.Op {
	case "&&":
		c.compileExpr(e.X)
		jz := c.emit(opJz, 0, 0, e.Pos)
		c.compileExpr(e.Y)
		c.emit(opBool, 0, 0, e.Pos)
		jend := c.emit(opJmp, 0, 0, e.Pos)
		c.patch(jz, c.bindLabel())
		c.emit(opConst, c.constOf(c.p.tt.mkInt(0, basicInt)), 0, e.Pos)
		c.patch(jend, c.bindLabel())
	case "||":
		c.compileExpr(e.X)
		jnz := c.emit(opJnz, 0, 0, e.Pos)
		c.compileExpr(e.Y)
		c.emit(opBool, 0, 0, e.Pos)
		jend := c.emit(opJmp, 0, 0, e.Pos)
		c.patch(jnz, c.bindLabel())
		c.emit(opConst, c.constOf(c.p.tt.mkInt(1, basicInt)), 0, e.Pos)
		c.patch(jend, c.bindLabel())
	default:
		c.compileExpr(e.X)
		c.compileExpr(e.Y)
		c.emit(opBinop, binopCode[e.Op], 0, e.Pos)
	}
}

func (c *compiler) compileAssign(e *cc.AssignExpr) {
	lt := e.LHS.ExprType()
	if st, ok := lt.(*cc.StructType); ok && e.Op == "=" {
		c.compileLvalue(e.LHS)
		c.compileExpr(e.RHS)
		c.emit(opStructCopy, int32(cellCount(st)), c.tidx(st), e.Pos)
		return
	}
	c.compileLvalue(e.LHS)
	if e.Op == "=" {
		c.compileExpr(e.RHS)
		c.emit(opStoreConv, c.tidx(scalarTypeOf(lt)), 0, e.Pos)
		return
	}
	c.emitLoadPtrAt(opLoadPtrKeep, lt, e.Pos)
	c.compileExpr(e.RHS)
	c.emit(opBinop, binopCode[e.Op[:len(e.Op)-1]], 0, e.Pos)
	c.emit(opStoreConv, c.tidx(scalarTypeOf(lt)), 0, e.Pos)
}

func (c *compiler) compileUnary(e *cc.UnaryExpr) {
	switch e.Op {
	case "&":
		// the address is the lvalue itself: the tree-walker's PtrValue
		// carries a type the evaluator never reads
		c.compileLvalue(e.X)
	case "*":
		c.compileExpr(e.X)
		c.emit(opCheckPtr, c.msg("dereferencing non-pointer"), 0, e.Pos)
		c.emitLoadPtrAt(opLoadPtr, e.Type, e.Pos)
	case "!":
		c.compileExpr(e.X)
		c.emit(opNot, 0, 0, e.Pos)
	case "-":
		c.compileExpr(e.X)
		c.emit(opNeg, 0, 0, e.Pos)
	case "+":
		c.compileExpr(e.X)
	case "~":
		c.compileExpr(e.X)
		c.emit(opBitNot, 0, 0, e.Pos)
	case "++", "--":
		c.compileLvalue(e.X)
		c.emitIncDec(e.Op, e.X, false, e.Pos)
	default:
		panic("refvm: unknown unary " + e.Op)
	}
}

// emitIncDec emits the ++/-- operation of evalUnary/evalPostfix: the
// lvalue pointer is on the stack; the op loads the old value with the
// operand's static type shape, adds or subtracts an int 1, stores, and
// pushes the old (postfix) or new (prefix) value.
func (c *compiler) emitIncDec(op string, x cc.Expr, post bool, pos cc.Pos) {
	flags := int32(0)
	if op == "--" {
		flags |= incDec
	}
	if post {
		flags |= incPost
	}
	a := int32(0)
	if t := x.ExprType(); t != nil && isAggregate(t) {
		flags |= incAgg
		a = c.tidx(elemOfType(t))
	}
	c.emit(opIncDec, a, flags, pos)
}

// compileCall compiles a call in value (want) or discard context,
// handling the printf/abort/exit builtins the way evalCall does: matched
// by name before user functions, abort and exit's surplus arguments never
// evaluated, printf's arguments evaluated lazily by the formatter.
func (c *compiler) compileCall(e *cc.CallExpr, want bool) {
	switch e.Fun.Name {
	case "printf":
		if len(e.Args) == 0 {
			c.emit(opLimit, c.msg(fmt.Sprintf("printf with no format at %s", e.Pos)), 0, e.Pos)
			return
		}
		c.compileExpr(e.Args[0])
		var jumps []int
		jumps = append(jumps, c.emit(opPrintfBegin, 0, 0, e.Pos))
		for _, a := range e.Args[1:] {
			c.compileExpr(a)
			jumps = append(jumps, c.emit(opPrintfFeed, 0, 0, e.Pos))
		}
		c.emit(opPrintfNoArg, 0, 0, e.Pos)
		end := c.bindLabel()
		for _, at := range jumps {
			c.code[at].b = int32(end)
		}
		if !want {
			c.emit(opPop, 0, 0, e.Pos)
		}
		return
	case "abort":
		c.emit(opAbort, 0, 0, e.Pos)
		return
	case "exit":
		if len(e.Args) > 0 {
			c.compileExpr(e.Args[0])
			c.emit(opExit, 0, 1, e.Pos)
		} else {
			c.emit(opExit, 0, 0, e.Pos)
		}
		return
	}
	fi, ok := c.fnIdxOf[e.Fun.Name]
	if !ok {
		c.emit(opLimit, c.msg(fmt.Sprintf("call to undefined function %q at %s", e.Fun.Name, e.Pos)), 0, e.Pos)
		return
	}
	for _, a := range e.Args {
		c.compileExpr(a)
	}
	op := opCallD
	if want {
		op = opCallV
	}
	c.emit(op, fi, int32(len(e.Args)), e.Pos)
}

// ---------------------------------------------------------------- lvalues

// compileLvalue mirrors machine.lvalue: no step for the lvalue node
// itself, children in value position evaluate (and step) normally.
func (c *compiler) compileLvalue(e cc.Expr) {
	switch e := e.(type) {
	case *cc.Ident:
		c.emitVarUse(e, opAddrVar)
	case *cc.UnaryExpr:
		if e.Op != "*" {
			c.emitUB(int32(ubNullDeref), "not an lvalue", e.Pos)
			return
		}
		c.compileExpr(e.X)
		c.emit(opCheckPtr, c.msg("dereferencing non-pointer value"), 0, e.Pos)
	case *cc.IndexExpr:
		c.compileExpr(e.X)
		c.compileExpr(e.Idx)
		c.emit(opIndexAddr, 0, 0, e.Pos)
	case *cc.MemberExpr:
		var st *cc.StructType
		if e.Arrow {
			c.compileExpr(e.X)
			c.emit(opCheckPtr, c.msg("-> on non-pointer"), 0, e.Pos)
			if pt, ok := cc.Decay(e.X.ExprType()).(*cc.PointerType); ok {
				st, _ = pt.Elem.(*cc.StructType)
			}
		} else {
			c.compileLvalue(e.X)
			st, _ = e.X.ExprType().(*cc.StructType)
		}
		if st == nil {
			c.emitUB(int32(ubNullDeref), "member access on non-struct", e.Pos)
			return
		}
		fi := st.FieldIndex(e.Name)
		if fi < 0 {
			c.emitUB(int32(ubOutOfBounds), fmt.Sprintf("no field %q", e.Name), e.Pos)
			return
		}
		c.emit(opMemberAddr, int32(fieldOffset(st, fi)), c.tidx(elemOfType(st.Fields[fi].Type)), e.Pos)
	case *cc.CondExpr:
		c.compileExpr(e.Cond)
		jz := c.emit(opJz, 0, 0, e.Pos)
		c.compileLvalue(e.T)
		jend := c.emit(opJmp, 0, 0, e.Pos)
		c.patch(jz, c.bindLabel())
		c.compileLvalue(e.F)
		c.patch(jend, c.bindLabel())
	default:
		c.emitUB(int32(ubNullDeref), "expression is not an lvalue", e.NodePos())
	}
}

// emitVarUse compiles a variable reference (load or address) and records
// it as a hole patch site when the ident is a skeleton hole.
func (c *compiler) emitVarUse(e *cc.Ident, op uint8) {
	sym := e.Sym
	if sym == nil {
		c.emitUB(int32(ubUninitRead), fmt.Sprintf("unresolved identifier %q", e.Name), e.Pos)
		return
	}
	vi := int32(len(c.p.varRefs))
	c.p.varRefs = append(c.p.varRefs, c.varRefFor(sym))
	if hi, isHole := c.holeOf[e]; isHole {
		c.p.holeSites[hi] = append(c.p.holeSites[hi], vi)
		c.p.holeT[hi] = c.p.varRefs[vi].allocT
	}
	c.emit(op, vi, 0, e.Pos)
}

// varRefFor builds the slot descriptor of one symbol.
func (c *compiler) varRefFor(sym *cc.Symbol) varRef {
	vr := varRef{
		allocT: c.tidx(sym.Type),
		elem:   c.tidx(elemOfType(sym.Type)),
		name:   c.name(sym.Name),
	}
	if sym.FuncIdx < 0 {
		vr.global = true
		vr.slot = c.gslotOf[sym.ID]
	} else {
		vr.slot = c.slotOf[sym.ID]
	}
	return vr
}

// emitLoadPtr emits the scalar-or-aggregate load of machine.load for a
// statically known type.
func (c *compiler) emitLoadPtr(op uint8, t cc.Type, pos cc.Pos) {
	c.emitLoadPtrAt(op, t, pos)
}

func (c *compiler) emitLoadPtrAt(op uint8, t cc.Type, pos cc.Pos) {
	if t != nil && isAggregate(t) {
		c.emit(op, c.tidx(elemOfType(t)), 1, pos)
		return
	}
	c.emit(op, 0, 0, pos)
}

// elemOfType mirrors interp's elemOf.
func elemOfType(t cc.Type) cc.Type {
	if at, ok := t.(*cc.ArrayType); ok {
		return at.Elem
	}
	return t
}

// fieldOffset mirrors interp's fieldOffset.
func fieldOffset(t *cc.StructType, i int) int {
	off := 0
	for j := 0; j < i; j++ {
		off += cellCount(t.Fields[j].Type)
	}
	return off
}

// strOf assigns a string-literal slot per NODE: the tree-walker interns
// string objects per *cc.StringLit, so two identical literals are two
// distinct objects (observable through pointer equality).
func (c *compiler) strOf(e *cc.StringLit) int32 {
	if i, ok := c.strIdx[e]; ok {
		return i
	}
	i := int32(len(c.p.strs))
	c.p.strs = append(c.p.strs, e.Val)
	c.strIdx[e] = i
	return i
}
