package refvm

import "spe/internal/cc"

// The type table interns every cc.Type a compiled program touches into a
// dense index so runtime values never carry interface words. The first
// numBasic entries are the basic types in cc.BasicKind order, which makes a
// basic value's type index its kind — the usual-arithmetic-conversion
// helpers below operate on raw indices.

// Basic type indices mirror cc.BasicKind (see cc/types.go).
const (
	basicVoid int32 = iota
	basicChar
	basicUChar
	basicShort
	basicUShort
	basicInt
	basicUInt
	basicLong
	basicULong
	basicFloat
	basicDouble
	numBasic
)

// tidxNone marks "no basic type": the analogue of the tree-walker's nil
// Value.Typ (pointer values, and intermediate states that never carry a
// type). Helpers treat it as non-basic: no truncation, signed, 64-bit.
const tidxNone int32 = -1

// kinds of non-basic table entries.
const (
	tkBasic uint8 = iota
	tkPtr
	tkArray
	tkStruct
	tkOther // function types and anything else that never reaches arithmetic
)

type typeEntry struct {
	kind  uint8
	cells int32 // cellCount of the type
	// elem is the type's element index: the pointee for pointers, the
	// element for arrays, the entry's own index otherwise (mirroring the
	// tree-walker's elemOf).
	elem int32
	typ  cc.Type
}

type typeTable struct {
	entries []typeEntry
	index   map[string]int32 // canonical spelling -> entry
}

func newTypeTable() *typeTable {
	tt := &typeTable{index: make(map[string]int32)}
	for k := basicVoid; k < numBasic; k++ {
		bt := &cc.BasicType{Kind: cc.BasicKind(k)}
		tt.entries = append(tt.entries, typeEntry{kind: tkBasic, cells: 1, elem: k, typ: bt})
		tt.index[bt.String()] = k
	}
	return tt
}

// intern returns the index of t, adding it (and its element chain) on
// first use. nil types intern to tidxNone.
func (tt *typeTable) intern(t cc.Type) int32 {
	if t == nil {
		return tidxNone
	}
	if bt, ok := t.(*cc.BasicType); ok {
		return int32(bt.Kind)
	}
	key := t.String()
	if ti, ok := tt.index[key]; ok {
		return ti
	}
	// reserve the slot first: recursive types cannot occur in the subset,
	// but element interning below must not race the map entry.
	ti := int32(len(tt.entries))
	tt.entries = append(tt.entries, typeEntry{typ: t})
	tt.index[key] = ti
	e := typeEntry{typ: t, cells: int32(cellCount(t)), elem: ti}
	switch t := t.(type) {
	case *cc.PointerType:
		// a pointer entry's elem records its POINTEE (consulted when a
		// value converts to this pointer type); elemOf never decays
		// pointers, only arrays, matching the tree-walker's elemOf.
		e.kind = tkPtr
		e.elem = tt.intern(t.Elem)
	case *cc.ArrayType:
		e.kind = tkArray
		e.elem = tt.intern(t.Elem)
	case *cc.StructType:
		e.kind = tkStruct
	default:
		e.kind = tkOther
	}
	tt.entries[ti] = e
	return ti
}

// cells returns the cell count of entry ti (1 for basic/none).
func (tt *typeTable) cells(ti int32) int32 {
	if ti < 0 {
		return 1
	}
	return tt.entries[ti].cells
}

// elemOf mirrors the tree-walker's elemOf: arrays yield their element,
// everything else yields itself.
func (tt *typeTable) elemOf(ti int32) int32 {
	if ti >= 0 && tt.entries[ti].kind == tkArray {
		return tt.entries[ti].elem
	}
	return ti
}

// cellCount mirrors interp's cellCount.
func cellCount(t cc.Type) int {
	switch t := t.(type) {
	case *cc.ArrayType:
		return t.Len * cellCount(t.Elem)
	case *cc.StructType:
		n := 0
		for _, f := range t.Fields {
			n += cellCount(f.Type)
		}
		return n
	default:
		return 1
	}
}

// scalarTypeOf mirrors interp's scalarType (arrays flattened to their
// bottom element; structs and scalars are themselves).
func scalarTypeOf(t cc.Type) cc.Type {
	if at, ok := t.(*cc.ArrayType); ok {
		return scalarTypeOf(at.Elem)
	}
	return t
}

// ---------------------------------------------------------------- helpers
//
// The arithmetic helpers operate on type indices and mirror interp's
// truncInt/isUnsigned/widthOf/promoteType/usualArith bit for bit. A
// non-basic index (tidxNone, or any entry >= numBasic) behaves like the
// tree-walker's non-basic cc.Type: no truncation, signed, 64 bits.

func isBasic(ti int32) bool { return ti >= 0 && ti < numBasic }

// trunc truncates x to the width and signedness of ti.
func (tt *typeTable) trunc(x int64, ti int32) int64 { return truncTidx(x, ti) }

func truncTidx(x int64, ti int32) int64 {
	if !isBasic(ti) {
		return x
	}
	switch ti {
	case basicChar:
		return int64(int8(x))
	case basicUChar:
		return int64(uint8(x))
	case basicShort:
		return int64(int16(x))
	case basicUShort:
		return int64(uint16(x))
	case basicInt:
		return int64(int32(x))
	case basicUInt:
		return int64(uint32(x))
	default: // long, ulong (signed bit pattern), float/double never reach
		return x
	}
}

func isUnsigned(ti int32) bool {
	switch ti {
	case basicUChar, basicUShort, basicUInt, basicULong:
		return true
	}
	return false
}

func isFloatTidx(ti int32) bool { return ti == basicFloat || ti == basicDouble }

func widthOf(ti int32) uint {
	if !isBasic(ti) {
		return 64
	}
	switch ti {
	case basicChar, basicUChar:
		return 8
	case basicShort, basicUShort:
		return 16
	case basicInt, basicUInt:
		return 32
	default:
		return 64
	}
}

// promote applies the integer promotions; non-basic indices pass through.
func promote(ti int32) int32 {
	switch ti {
	case basicChar, basicUChar, basicShort, basicUShort:
		return basicInt
	}
	return ti
}

// usual applies the usual arithmetic conversions, mirroring interp's
// usualArith: a non-basic operand yields the other operand unpromoted.
func usual(a, b int32) int32 {
	pa, pb := promote(a), promote(b)
	if !isBasic(pa) {
		return b
	}
	if !isBasic(pb) {
		return a
	}
	if pa >= pb {
		return pa
	}
	return pb
}
