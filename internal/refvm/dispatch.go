package refvm

import "spe/internal/interp"

// Threaded dispatch: instead of re-decoding the opcode through one
// monolithic switch per instruction, each compiled function carries a
// handler table parallel to its code — one function pointer per
// instruction, selected once at skeleton-compile time (buildHandlers).
// Selection can therefore specialize on facts the compiler proved and
// the patching discipline preserves: a variable load whose interned type
// is scalar never re-checks for aggregates, a comparison binop gets the
// integer fast path. Both dispatch modes execute the identical
// instruction stream and share every semantic helper, so their Results
// are byte-identical; the equivalence suites pin this.

// opFunc executes one instruction and returns the next pc. Call, return,
// and halt handlers additionally retarget vm.tfn; the loop reloads its
// code/handler slices when it moves.
type opFunc func(vm *vmState, in *instr, pc int32) int32

func (vm *vmState) execThreaded() {
	// the entry pseudo-frame runs global initialization, exactly like exec
	vm.frames = append(vm.frames, vframe{fn: vm.p.entry})
	cur := vm.p.entry
	vm.tfn = cur
	code := cur.code
	handlers := cur.handlers
	pc := int32(0)
	for {
		in := &code[pc]
		if in.step != 0 {
			vm.steps += int64(in.step)
			if vm.steps > vm.cfg.MaxSteps {
				vm.limit("step budget exhausted at %s", vm.pos(in.pos))
			}
		}
		pc = handlers[pc](vm, in, pc)
		if vm.tfn != cur {
			if vm.tfn == nil {
				return
			}
			cur = vm.tfn
			code = cur.code
			handlers = cur.handlers
		}
	}
}

// buildHandlers populates every function's handler table. Runs once at
// the end of compilation, after goto resolution, fusion, and the full
// varRefs table exist.
func buildHandlers(p *program) {
	for _, fn := range p.fns {
		buildFnHandlers(p, fn)
	}
	buildFnHandlers(p, p.entry)
}

func buildFnHandlers(p *program, fn *fnCode) {
	hs := make([]opFunc, len(fn.code))
	for i := range fn.code {
		hs[i] = handlerFor(p, fn, i)
	}
	fn.handlers = hs
}

// handlerFor picks the handler for one instruction, specializing where
// the instruction's operands prove the shape. The specializations are
// patch-stable: Cache.patch refuses rebindings that change a hole's
// interned type, so a varRef's scalar/aggregate kind and a binop's
// operator code never change under an existing handler table.
func handlerFor(p *program, fn *fnCode, i int) opFunc {
	in := &fn.code[i]
	switch in.op {
	case opLoadVar:
		if scalarRef(p, in.a) {
			return hLoadVarScalar
		}
		return hLoadVarAgg
	case opBinop:
		if in.a >= bopEq {
			return hBinopCmp
		}
	case opBinopJz:
		if in.a >= bopEq {
			return hBinopCmpJz
		}
	case opBinopJnz:
		if in.a >= bopEq {
			return hBinopCmpJnz
		}
	}
	return opHandlers[in.op]
}

var opHandlers = [nOps]opFunc{
	opStep:         hStep,
	opConst:        hConst,
	opStr:          hStr,
	opLoadVar:      hLoadVarScalar, // overridden per instruction in handlerFor
	opAddrVar:      hAddrVar,
	opLoadPtr:      hLoadPtr,
	opLoadPtrKeep:  hLoadPtrKeep,
	opCheckPtr:     hCheckPtr,
	opIndexAddr:    hIndexAddr,
	opMemberAddr:   hMemberAddr,
	opBinop:        hBinop,
	opNot:          hNot,
	opNeg:          hNeg,
	opBitNot:       hBitNot,
	opIncDec:       hIncDec,
	opConv:         hConv,
	opJmp:          hJmp,
	opJz:           hJz,
	opJnz:          hJnz,
	opBool:         hBool,
	opPop:          hPop,
	opStoreConv:    hStoreConv,
	opStructCopy:   hStructCopy,
	opCallV:        hCall,
	opCallD:        hCall,
	opRetVal:       hRet,
	opRetNone:      hRet,
	opGotoEscape:   hGotoEscape,
	opAllocVar:     hAllocVar,
	opAllocGlobal:  hAllocGlobal,
	opInitCell:     hInitCell,
	opZeroFill:     hZeroFill,
	opZeroAll:      hZeroAll,
	opStaticBegin:  hStaticBegin,
	opStaticBind:   hStaticBind,
	opPrintfBegin:  hPrintfBegin,
	opPrintfFeed:   hPrintfFeed,
	opPrintfNoArg:  hPrintfNoArg,
	opAbort:        hAbort,
	opExit:         hExit,
	opUB:           hUB,
	opLimit:        hLimit,
	opCallMain:     hCallMain,
	opHalt:         hHalt,
	opLoadVarBinop: hLoadVarBinop,
	opConstBinop:   hConstBinop,
	opBinopJz:      hBinopJz,
	opBinopJnz:     hBinopJnz,
	opConstStore:   hConstStore,
}

// ---------------------------------------------------------------- handlers
//
// Each handler mirrors the corresponding exec() switch case exactly; the
// only difference is that frame-dependent cases resolve the current frame
// from vm.frames instead of exec's cached local.

func hStep(vm *vmState, in *instr, pc int32) int32 { return pc + 1 }

func hConst(vm *vmState, in *instr, pc int32) int32 {
	vm.push(vm.p.consts[in.a])
	return pc + 1
}

func hStr(vm *vmState, in *instr, pc int32) int32 {
	h := vm.strObjs[in.a]
	if h == 0 {
		s := vm.p.strs[in.a]
		h = vm.allocRaw(int32(len(s)+1), -1, vm.p.nameStrlit, true, true)
		cells := vm.objs[h].cells
		for i := 0; i < len(s); i++ {
			cells[i] = vCell{val: vm.p.tt.mkInt(int64(s[i]), basicChar), init: true}
		}
		cells[len(s)] = vCell{val: vm.p.tt.mkInt(0, basicChar), init: true}
		vm.strObjs[in.a] = h
	}
	vm.push(mkPtr(h, 0, basicChar))
	return pc + 1
}

func hLoadVarScalar(vm *vmState, in *instr, pc int32) int32 {
	vr := &vm.p.varRefs[in.a]
	h := vm.varObj(vr)
	cell := &vm.objs[h].cells[0]
	if !cell.init {
		vm.ub(ubUninitRead, in.pos, "object %s cell %d", vm.p.names[vr.name], 0)
	}
	vm.push(cell.val)
	return pc + 1
}

func hLoadVarAgg(vm *vmState, in *instr, pc int32) int32 {
	vr := &vm.p.varRefs[in.a]
	vm.push(mkPtr(vm.varObj(vr), 0, vr.elem))
	return pc + 1
}

func hAddrVar(vm *vmState, in *instr, pc int32) int32 {
	vr := &vm.p.varRefs[in.a]
	vm.push(mkPtr(vm.varObj(vr), 0, vr.elem))
	return pc + 1
}

func hLoadPtr(vm *vmState, in *instr, pc int32) int32 {
	p := vm.pop()
	vm.push(vm.load(p, in.pos, in.a, in.b != 0))
	return pc + 1
}

func hLoadPtrKeep(vm *vmState, in *instr, pc int32) int32 {
	p := *vm.top()
	vm.push(vm.load(p, in.pos, in.a, in.b != 0))
	return pc + 1
}

func hCheckPtr(vm *vmState, in *instr, pc int32) int32 {
	if vm.top().Kind != kPtr {
		vm.ub(ubNullDeref, in.pos, "%s", vm.p.msgs[in.a])
	}
	return pc + 1
}

func hIndexAddr(vm *vmState, in *instr, pc int32) int32 {
	idx := vm.pop()
	base := vm.pop()
	if base.Kind != kPtr {
		vm.ub(ubNullDeref, in.pos, "indexing non-pointer value")
	}
	if idx.Kind != kInt {
		vm.ub(ubOutOfBounds, in.pos, "non-integer index")
	}
	scale := int64(vm.p.tt.cells(base.TIdx))
	vm.push(mkPtr(base.Obj, base.off()+iOf(idx)*scale, vm.p.tt.elemOf(base.TIdx)))
	return pc + 1
}

func hMemberAddr(vm *vmState, in *instr, pc int32) int32 {
	base := vm.pop()
	vm.push(mkPtr(base.Obj, base.off()+int64(in.a), in.b))
	return pc + 1
}

func hBinop(vm *vmState, in *instr, pc int32) int32 {
	y := vm.pop()
	x := vm.pop()
	vm.push(vm.binop(in.a, x, y, in.pos))
	return pc + 1
}

// hBinopCmp is the comparison specialization: both-integer operands skip
// the kind dispatch straight into intCompare (the dominant case in loop
// conditions); anything else falls back to the full binop.
func hBinopCmp(vm *vmState, in *instr, pc int32) int32 {
	y := vm.pop()
	x := vm.pop()
	if x.Kind == kInt && y.Kind == kInt {
		vm.push(boolValue(intCompare(in.a, x, y)))
	} else {
		vm.push(vm.binop(in.a, x, y, in.pos))
	}
	return pc + 1
}

func hNot(vm *vmState, in *instr, pc int32) int32 {
	v := vm.pop()
	vm.push(boolValue(v.isZero()))
	return pc + 1
}

func hNeg(vm *vmState, in *instr, pc int32) int32 {
	v := vm.pop()
	if v.Kind == kFloat {
		vm.push(vm.p.tt.mkFloat(-fOf(v), v.TIdx))
	} else {
		t := typeOf(v)
		zero := Value{Kind: kInt, TIdx: t}
		vm.push(vm.intArith(bopSub, zero, v, in.pos, t))
	}
	return pc + 1
}

func hBitNot(vm *vmState, in *instr, pc int32) int32 {
	v := vm.pop()
	if v.Kind != kInt {
		vm.ub(ubShift, in.pos, "~ on non-integer")
	}
	t := promote(typeOf(v))
	vm.push(vm.p.tt.mkInt(^iOf(v), t))
	return pc + 1
}

func hIncDec(vm *vmState, in *instr, pc int32) int32 {
	p := vm.pop()
	old := vm.load(p, in.pos, in.a, in.b&incAgg != 0)
	op := bopAdd
	if in.b&incDec != 0 {
		op = bopSub
	}
	one := Value{Kind: kInt, Bits: 1, TIdx: basicInt}
	nv := vm.addSub(op, old, one, in.pos, typeOf(old))
	vm.store(p, nv, in.pos)
	if in.b&incPost != 0 {
		vm.push(old)
	} else {
		vm.push(nv)
	}
	return pc + 1
}

func hConv(vm *vmState, in *instr, pc int32) int32 {
	v := vm.pop()
	vm.push(vm.convertAt(v, in.a, in.pos))
	return pc + 1
}

func hJmp(vm *vmState, in *instr, pc int32) int32 { return in.a }

func hJz(vm *vmState, in *instr, pc int32) int32 {
	if vm.pop().isZero() {
		return in.a
	}
	return pc + 1
}

func hJnz(vm *vmState, in *instr, pc int32) int32 {
	if !vm.pop().isZero() {
		return in.a
	}
	return pc + 1
}

func hBool(vm *vmState, in *instr, pc int32) int32 {
	v := vm.pop()
	vm.push(boolValue(!v.isZero()))
	return pc + 1
}

func hPop(vm *vmState, in *instr, pc int32) int32 {
	vm.stack = vm.stack[:len(vm.stack)-1]
	return pc + 1
}

func hStoreConv(vm *vmState, in *instr, pc int32) int32 {
	v := vm.pop()
	p := vm.pop()
	cv := vm.convertAt(v, in.a, in.pos)
	vm.store(p, cv, in.pos)
	vm.push(cv)
	return pc + 1
}

func hStructCopy(vm *vmState, in *instr, pc int32) int32 {
	rv := vm.pop()
	lhs := vm.pop()
	if rv.Kind != kPtr {
		vm.ub(ubOutOfBounds, in.pos, "struct assignment from non-struct")
	}
	n := int64(in.a)
	for i := int64(0); i < n; i++ {
		src := mkPtr(rv.Obj, rv.off()+i, rv.TIdx)
		vm.checkAccess(src, in.pos)
		cell := &vm.objs[rv.Obj].cells[rv.off()+i]
		if !cell.init {
			vm.ub(ubUninitRead, in.pos, "copy of uninitialized struct field")
		}
		vm.store(mkPtr(lhs.Obj, lhs.off()+i, lhs.TIdx), cell.val, in.pos)
	}
	vm.push(mkPtr(lhs.Obj, lhs.off(), in.b))
	return pc + 1
}

func hCall(vm *vmState, in *instr, pc int32) int32 {
	fn2 := vm.p.fns[in.a]
	if len(vm.frames)-1 >= vm.cfg.MaxDepth {
		vm.limit("call depth exceeded at %s", vm.pos(in.pos))
	}
	nargs := int(in.b)
	argBase := len(vm.stack) - nargs
	n := len(vm.frames)
	if n < cap(vm.frames) {
		vm.frames = vm.frames[:n+1]
	} else {
		vm.frames = append(vm.frames, vframe{})
	}
	nf := &vm.frames[n]
	nf.fn = fn2
	nf.locals = resizeSlots(nf.locals, fn2.nslots)
	nf.retpc = pc + 1
	nf.callPos = in.pos
	nf.want = in.op == opCallV
	nf.isMain = false
	for pi := range fn2.params {
		prm := &fn2.params[pi]
		h := vm.alloc(prm.allocT, prm.name)
		var v Value
		if pi < nargs {
			v = vm.convertAt(vm.stack[argBase+pi], prm.convT, in.pos)
		} else {
			v = vm.p.consts[prm.zero]
		}
		vm.objs[h].cells[0] = vCell{val: v, init: true}
		if prm.slot >= 0 {
			nf.locals[prm.slot] = h
		}
	}
	vm.stack = vm.stack[:argBase]
	vm.tfn = fn2
	return 0
}

func hCallMain(vm *vmState, in *instr, pc int32) int32 {
	if vm.p.mainFn < 0 {
		vm.limit("no main function")
	}
	fn2 := vm.p.fns[vm.p.mainFn]
	n := len(vm.frames)
	if n < cap(vm.frames) {
		vm.frames = vm.frames[:n+1]
	} else {
		vm.frames = append(vm.frames, vframe{})
	}
	nf := &vm.frames[n]
	nf.fn = fn2
	nf.locals = resizeSlots(nf.locals, fn2.nslots)
	nf.retpc = pc + 1
	nf.callPos = in.pos
	nf.want = false
	nf.isMain = true
	for pi := range fn2.params {
		prm := &fn2.params[pi]
		h := vm.alloc(prm.allocT, prm.name)
		vm.objs[h].cells[0] = vCell{val: vm.p.consts[prm.zero], init: true}
		if prm.slot >= 0 {
			nf.locals[prm.slot] = h
		}
	}
	vm.tfn = fn2
	return 0
}

func hRet(vm *vmState, in *instr, pc int32) int32 {
	if in.op == opRetVal {
		vm.retVal = vm.pop()
		vm.hasRet = true
	} else {
		vm.hasRet = false
	}
	fr := &vm.frames[len(vm.frames)-1]
	for _, h := range fr.locals {
		if h != 0 {
			if o := &vm.objs[h]; !o.persistent {
				o.live = false
			}
		}
	}
	retpc, want, isMain, callPos := fr.retpc, fr.want, fr.isMain, fr.callPos
	fnName := fr.fn.name
	vm.frames = vm.frames[:len(vm.frames)-1]
	vm.tfn = vm.frames[len(vm.frames)-1].fn
	if isMain {
		if vm.hasRet {
			vm.exit = int(uint8(iOf(vm.retVal)))
		} else {
			vm.exit = 0 // C99 5.1.2.2.3: falling off main returns 0
		}
	} else if want {
		if !vm.hasRet {
			vm.ub(ubNoReturnValue, callPos, "value of %s() used but function returned without a value", fnName)
		}
		vm.push(vm.retVal)
	}
	return retpc
}

func hGotoEscape(vm *vmState, in *instr, pc int32) int32 {
	fr := &vm.frames[len(vm.frames)-1]
	vm.ub(ubOutOfBounds, fr.callPos, "goto to label %q escaped function", vm.p.names[in.a])
	panic("unreachable")
}

func hAllocVar(vm *vmState, in *instr, pc int32) int32 {
	d := &vm.p.decls[in.a]
	h := vm.alloc(d.allocT, d.name)
	vm.frames[len(vm.frames)-1].locals[d.slot] = h
	if in.b != 0 {
		vm.push(mkPtr(h, 0, tidxNone))
	}
	return pc + 1
}

func hAllocGlobal(vm *vmState, in *instr, pc int32) int32 {
	d := &vm.p.decls[in.a]
	h := vm.alloc(d.allocT, d.name)
	vm.globals[d.slot] = h
	if in.b != 0 {
		vm.push(mkPtr(h, 0, tidxNone))
	}
	return pc + 1
}

func hInitCell(vm *vmState, in *instr, pc int32) int32 {
	v := vm.pop()
	p := vm.top()
	cv := vm.convertAt(v, in.a, in.pos)
	vm.objs[p.Obj].cells[in.b] = vCell{val: cv, init: true}
	return pc + 1
}

func hZeroFill(vm *vmState, in *instr, pc int32) int32 {
	p := vm.top()
	zv := vm.p.consts[in.a]
	cells := vm.objs[p.Obj].cells
	for i := range cells {
		if !cells[i].init {
			cells[i] = vCell{val: zv, init: true}
		}
	}
	return pc + 1
}

func hZeroAll(vm *vmState, in *instr, pc int32) int32 {
	p := vm.top()
	zv := vm.p.consts[in.a]
	cells := vm.objs[p.Obj].cells
	for i := range cells {
		cells[i] = vCell{val: zv, init: true}
	}
	return pc + 1
}

func hStaticBegin(vm *vmState, in *instr, pc int32) int32 {
	si := &vm.p.statics[in.a]
	if vm.statics[si.sslot] != 0 {
		return in.b
	}
	vm.nextID++
	h := vm.allocRaw(vm.p.tt.cells(si.allocT), vm.nextID, si.name, true, true)
	vm.statics[si.sslot] = h
	vm.push(mkPtr(h, 0, tidxNone))
	return pc + 1
}

func hStaticBind(vm *vmState, in *instr, pc int32) int32 {
	si := &vm.p.statics[in.a]
	fr := &vm.frames[len(vm.frames)-1]
	fr.locals[si.lslot] = vm.statics[si.sslot]
	return pc + 1
}

func hPrintfBegin(vm *vmState, in *instr, pc int32) int32 {
	fv := vm.pop()
	format := vm.readCString(fv, in.pos)
	vm.pstates = append(vm.pstates, pstate{format: format, pos: in.pos})
	if !vm.pfAdvance() {
		vm.pfFinish()
		return in.b
	}
	return pc + 1
}

func hPrintfFeed(vm *vmState, in *instr, pc int32) int32 {
	v := vm.pop()
	vm.pfApply(v)
	if !vm.pfAdvance() {
		vm.pfFinish()
		return in.b
	}
	return pc + 1
}

func hPrintfNoArg(vm *vmState, in *instr, pc int32) int32 {
	vm.limit("printf: missing argument for conversion at %s", vm.pos(in.pos))
	panic("unreachable")
}

func hAbort(vm *vmState, in *instr, pc int32) int32 {
	panic(abortPanic{})
}

func hExit(vm *vmState, in *instr, pc int32) int32 {
	code := 0
	if in.b != 0 {
		code = int(uint8(iOf(vm.pop())))
	}
	panic(exitPanic{code: code})
}

func hUB(vm *vmState, in *instr, pc int32) int32 {
	vm.ub(in.a, in.pos, "%s", vm.p.msgs[in.b])
	panic("unreachable")
}

func hLimit(vm *vmState, in *instr, pc int32) int32 {
	panic(limitPanic{&interp.LimitError{Msg: vm.p.msgs[in.a]}})
}

func hHalt(vm *vmState, in *instr, pc int32) int32 {
	vm.tfn = nil
	return 0
}

// ------------------------------------------------------- superinstructions

func hLoadVarBinop(vm *vmState, in *instr, pc int32) int32 {
	vr := &vm.p.varRefs[in.a]
	h := vm.varObj(vr)
	cell := &vm.objs[h].cells[0]
	if !cell.init {
		vm.ub(ubUninitRead, in.pos, "object %s cell %d", vm.p.names[vr.name], 0)
	}
	nxt := &vm.tfn.code[pc+1]
	x := vm.pop()
	vm.push(vm.binop(nxt.a, x, cell.val, nxt.pos))
	return pc + 2
}

func hConstBinop(vm *vmState, in *instr, pc int32) int32 {
	nxt := &vm.tfn.code[pc+1]
	x := vm.pop()
	vm.push(vm.binop(nxt.a, x, vm.p.consts[in.a], nxt.pos))
	return pc + 2
}

func hBinopJz(vm *vmState, in *instr, pc int32) int32 {
	y := vm.pop()
	x := vm.pop()
	if vm.binop(in.a, x, y, in.pos).isZero() {
		return vm.tfn.code[pc+1].a
	}
	return pc + 2
}

func hBinopJnz(vm *vmState, in *instr, pc int32) int32 {
	y := vm.pop()
	x := vm.pop()
	if !vm.binop(in.a, x, y, in.pos).isZero() {
		return vm.tfn.code[pc+1].a
	}
	return pc + 2
}

// hBinopCmpJz/hBinopCmpJnz add the integer-comparison fast path to the
// fused compare+branch pair — the single hottest shape in loop headers.
func hBinopCmpJz(vm *vmState, in *instr, pc int32) int32 {
	y := vm.pop()
	x := vm.pop()
	var taken bool
	if x.Kind == kInt && y.Kind == kInt {
		taken = !intCompare(in.a, x, y)
	} else {
		taken = vm.binop(in.a, x, y, in.pos).isZero()
	}
	if taken {
		return vm.tfn.code[pc+1].a
	}
	return pc + 2
}

func hBinopCmpJnz(vm *vmState, in *instr, pc int32) int32 {
	y := vm.pop()
	x := vm.pop()
	var taken bool
	if x.Kind == kInt && y.Kind == kInt {
		taken = intCompare(in.a, x, y)
	} else {
		taken = !vm.binop(in.a, x, y, in.pos).isZero()
	}
	if taken {
		return vm.tfn.code[pc+1].a
	}
	return pc + 2
}

func hConstStore(vm *vmState, in *instr, pc int32) int32 {
	nxt := &vm.tfn.code[pc+1]
	p := vm.pop()
	cv := vm.convertAt(vm.p.consts[in.a], nxt.a, nxt.pos)
	vm.store(p, cv, nxt.pos)
	vm.push(cv)
	return pc + 2
}
