package refvm

import (
	"testing"

	"spe/internal/cc"
	"spe/internal/corpus"
	"spe/internal/interp"
)

func benchPrograms(b *testing.B) []*cc.Program {
	b.Helper()
	var progs []*cc.Program
	srcs := corpus.Seeds()
	srcs = append(srcs, corpus.Generate(corpus.Config{N: 20, Seed: 99})...)
	for _, src := range srcs {
		f, err := cc.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		p, err := cc.Analyze(f)
		if err != nil {
			b.Fatal(err)
		}
		progs = append(progs, p)
	}
	return progs
}

// BenchmarkOracleTree is the tree-walking reference oracle on a pooled
// machine (the PR 4 hot path).
func BenchmarkOracleTree(b *testing.B) {
	progs := benchPrograms(b)
	m := interp.NewMachine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run(progs[i%len(progs)], interp.Config{})
	}
}

// BenchmarkOracleBytecode is the bytecode oracle through the template
// cache (the PR 5 hot path: compile once, patch and run per variant),
// under the default threaded dispatch with superinstruction fusion.
func BenchmarkOracleBytecode(b *testing.B) {
	progs := benchPrograms(b)
	ca := NewCache()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ca.Run(progs[i%len(progs)], nil, Config{})
	}
}

// BenchmarkOracleBytecodeSwitch is the same workload on the monolithic
// opcode-switch engine — the A/B partner for the threaded dispatch claim.
func BenchmarkOracleBytecodeSwitch(b *testing.B) {
	progs := benchPrograms(b)
	ca := NewCache()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ca.Run(progs[i%len(progs)], nil, Config{Dispatch: DispatchSwitch})
	}
}

// BenchmarkOracleBytecodeNoFuse compiles without the superinstruction
// pass and runs the switch engine — the PR 5 shape of the oracle, for
// isolating what fusion alone buys.
func BenchmarkOracleBytecodeNoFuse(b *testing.B) {
	progs := benchPrograms(b)
	compiled := make([]*program, len(progs))
	for i, p := range progs {
		compiled[i] = compileProgramOpt(p, nil, true)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		newVMState().run(compiled[i%len(compiled)], Config{Dispatch: DispatchSwitch})
	}
}
