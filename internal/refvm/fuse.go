package refvm

// Superinstruction fusion: the hottest opcode pairs in campaign profiles
// (scalar load + binop, const + binop, compare + conditional branch,
// const + store) collapse into one dispatch each. The rewrite is strictly
// in place — the second instruction of a fused pair stays in the stream
// as the superinstruction's operand word and is skipped at run time with
// pc+=2 — so every jump target, call return address, and varRef-indexed
// hole patch site keeps its meaning; fused templates patch exactly like
// unfused ones.
//
// A pair is fused only when
//   - the second instruction is not a jump target or a call return
//     address (control flow may never land in the middle of a pair), and
//   - the second instruction carries no pending step (always true for the
//     fused shapes — the compiler flushes pending steps onto a subtree's
//     first instruction — but checked, since step accounting is part of
//     the oracle's observable surface), and
//   - for load+binop, the loaded variable is provably scalar in the
//     interned type table (patch-stable: Cache.patch refuses rebindings
//     that change a hole's interned type, so an aggregate can never
//     appear under a scalar-specialized superinstruction).

func fuseCode(p *program, fn *fnCode) {
	code := fn.code
	if len(code) < 2 {
		return
	}
	// Addresses control flow can land on: explicit jump targets, the lazy
	// printf/static resume points, and call return addresses.
	target := make([]bool, len(code)+1)
	for i := range code {
		switch code[i].op {
		case opJmp, opJz, opJnz:
			target[code[i].a] = true
		case opStaticBegin, opPrintfBegin, opPrintfFeed:
			target[code[i].b] = true
		case opCallV, opCallD, opCallMain:
			target[i+1] = true
		}
	}
	for i := 0; i+1 < len(code); i++ {
		if target[i+1] || code[i+1].step != 0 {
			continue
		}
		in := &code[i]
		switch nop := code[i+1].op; {
		case in.op == opLoadVar && nop == opBinop && scalarRef(p, in.a):
			in.op = opLoadVarBinop
			i++
		case in.op == opConst && nop == opBinop:
			in.op = opConstBinop
			i++
		case in.op == opBinop && nop == opJz:
			in.op = opBinopJz
			i++
		case in.op == opBinop && nop == opJnz:
			in.op = opBinopJnz
			i++
		case in.op == opConst && nop == opStoreConv:
			in.op = opConstStore
			i++
		}
	}
}

// scalarRef reports whether a varRef's interned type is loaded as a
// scalar by opLoadVar (aggregates push their storage pointer instead).
func scalarRef(p *program, vi int32) bool {
	switch p.tt.entries[p.varRefs[vi].allocT].kind {
	case tkArray, tkStruct:
		return false
	}
	return true
}
