package refvm

import (
	"fmt"
	"math"

	"spe/internal/cc"
	"spe/internal/interp"
)

// UB kinds as int32 instruction operands (aliasing interp's enumeration:
// refvm reports its verdicts as *interp.Result so the campaign's
// classification code is oracle-agnostic).
const (
	ubUninitRead     = int32(interp.UBUninitRead)
	ubDivByZero      = int32(interp.UBDivByZero)
	ubSignedOverflow = int32(interp.UBSignedOverflow)
	ubShift          = int32(interp.UBShift)
	ubOutOfBounds    = int32(interp.UBOutOfBounds)
	ubNullDeref      = int32(interp.UBNullDeref)
	ubDangling       = int32(interp.UBDangling)
	ubNoReturnValue  = int32(interp.UBNoReturnValue)
)

// Dispatch modes. Both execute the same bytecode (superinstruction fusion
// happens at compile time, before the mode is chosen) and produce
// byte-identical Results; switch dispatch is the simpler loop kept as a
// cross-checking referee and an escape hatch.
const (
	DispatchThreaded = "threaded" // function-pointer handler table (default)
	DispatchSwitch   = "switch"   // monolithic opcode switch
)

// Config bounds an execution; the defaults match interp.Config so the two
// oracles agree on every resource verdict.
type Config struct {
	MaxSteps  int64  // default 2,000,000
	MaxDepth  int    // default 256
	MaxOutput int    // default 1 MiB
	Dispatch  string // DispatchThreaded (default) or DispatchSwitch
}

func (c Config) withDefaults() Config {
	if c.MaxSteps == 0 {
		c.MaxSteps = 2_000_000
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 256
	}
	if c.MaxOutput == 0 {
		c.MaxOutput = 1 << 20
	}
	if c.Dispatch == "" {
		c.Dispatch = DispatchThreaded
	}
	return c
}

type ubPanic struct{ err *interp.UBError }
type limitPanic struct{ err *interp.LimitError }
type exitPanic struct{ code int }
type abortPanic struct{}

// vObject is one allocated memory object in the slab.
type vObject struct {
	cells      []vCell
	id         int32
	name       int32
	live       bool
	persistent bool
}

// vframe is one call frame: dense per-function slots of object handles.
type vframe struct {
	fn      *fnCode
	locals  []int32
	retpc   int32
	callPos int32
	want    bool
	isMain  bool
}

// pstate is one in-flight printf's incremental formatter state. States
// nest (a printf argument may itself call printf); each buffers its own
// output and commits to the machine's output only on completion, exactly
// like the tree-walker's builtinPrintf, whose partial output is discarded
// when a conversion panics mid-format.
type pstate struct {
	format string
	i      int
	buf    []byte
	spec   string
	conv   byte
	long   int
	pos    int32
}

// vmState is the bytecode oracle's reusable machine: object slab, frame
// stack, operand stack, output buffer — reset, not reallocated, between
// runs. Strictly single-goroutine, like interp.Machine.
type vmState struct {
	p   *program
	cfg Config

	objs    []vObject // objs[0] is the reserved null object
	objUsed int       // live prefix (excluding the null slot)
	nextID  int32

	globals []int32
	statics []int32
	strObjs []int32

	frames  []vframe
	stack   []Value
	pstates []pstate
	out     []byte
	steps   int64
	exit    int
	hasRet  bool
	retVal  Value

	// tfn is the threaded-dispatch loop's current function: call/return
	// handlers retarget it and the loop reloads its code/handler tables
	// when it moves (nil = halt). The switch loop ignores it.
	tfn *fnCode
}

func newVMState() *vmState {
	return &vmState{objs: make([]vObject, 1)}
}

// maxPooledObjects bounds the slab kept across runs: a pathological
// variant (say, a loop of int-to-pointer casts, each of which forges a
// distinct dead object, as in the tree-walker) may allocate far more
// objects than a typical run; keeping them all pooled would pin that
// worst case in every campaign worker.
const maxPooledObjects = 1 << 16

func resizeSlots(s []int32, n int32) []int32 {
	if int32(cap(s)) < n {
		return make([]int32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func (vm *vmState) reset(p *program, cfg Config) {
	vm.p = p
	vm.cfg = cfg
	if len(vm.objs) > maxPooledObjects {
		vm.objs = vm.objs[:maxPooledObjects]
	}
	vm.objUsed = 0
	vm.nextID = 0
	vm.globals = resizeSlots(vm.globals, p.nGlobals)
	vm.statics = resizeSlots(vm.statics, p.nStatics)
	vm.strObjs = resizeSlots(vm.strObjs, int32(len(p.strs)))
	vm.frames = vm.frames[:0]
	vm.stack = vm.stack[:0]
	vm.pstates = vm.pstates[:0]
	vm.out = vm.out[:0]
	vm.steps = 0
	vm.exit = 0
	vm.hasRet = false
	vm.retVal = Value{}
}

// run executes the compiled program, producing the same Result the
// tree-walking interpreter produces for the same source program.
func (vm *vmState) run(p *program, cfg Config) (res *interp.Result) {
	cfg = cfg.withDefaults()
	vm.reset(p, cfg)
	res = &interp.Result{}
	defer func() {
		if r := recover(); r != nil {
			switch pn := r.(type) {
			case ubPanic:
				res.UB = pn.err
			case limitPanic:
				res.Limit = pn.err
			case exitPanic:
				res.Exit = pn.code
			case abortPanic:
				res.Aborted = true
			default:
				panic(r)
			}
		}
		res.Output = string(vm.out)
		res.Steps = vm.steps
	}()
	if vm.cfg.Dispatch == DispatchSwitch {
		vm.exec()
	} else {
		vm.execThreaded()
	}
	res.Exit = vm.exit
	return res
}

// ---------------------------------------------------------------- helpers

func (vm *vmState) pos(i int32) cc.Pos { return vm.p.poss[i] }

func (vm *vmState) ub(kind int32, posIdx int32, format string, args ...interface{}) {
	msg := format
	if len(args) > 0 {
		msg = fmt.Sprintf(format, args...)
	}
	panic(ubPanic{&interp.UBError{Kind: interp.UBKind(kind), Pos: vm.pos(posIdx), Msg: msg}})
}

func (vm *vmState) limit(format string, args ...interface{}) {
	panic(limitPanic{&interp.LimitError{Msg: fmt.Sprintf(format, args...)}})
}

func (vm *vmState) objName(h int32) string { return vm.p.names[vm.objs[h].name] }

// allocRaw carves an object out of the slab. Reused cells are cleared to
// the uninitialized state; objects are never recycled within a run, so
// dangling-pointer detection keeps dead objects distinct.
func (vm *vmState) allocRaw(cells int32, id int32, name int32, persistent, live bool) int32 {
	vm.objUsed++
	h := vm.objUsed
	if h < len(vm.objs) {
		o := &vm.objs[h]
		cs := o.cells
		if int32(cap(cs)) >= cells {
			cs = cs[:cells]
			for i := range cs {
				cs[i] = vCell{}
			}
		} else {
			cs = make([]vCell, cells)
		}
		*o = vObject{cells: cs, id: id, name: name, live: live, persistent: persistent}
		return int32(h)
	}
	vm.objs = append(vm.objs, vObject{cells: make([]vCell, cells), id: id, name: name, live: live, persistent: persistent})
	return int32(h)
}

// alloc mirrors machine.alloc: bump the object ID (program-visible via
// pointer-to-int conversion and %p) and size by the type's cell count.
func (vm *vmState) alloc(tIdx int32, name int32) int32 {
	vm.nextID++
	return vm.allocRaw(vm.p.tt.cells(tIdx), vm.nextID, name, false, true)
}

// allocForged mirrors the tree-walker's int-to-pointer forgery: a fresh,
// dead, cell-less object per conversion (distinct forged pointers never
// compare equal, and any access is dangling UB).
func (vm *vmState) allocForged() int32 {
	return vm.allocRaw(0, 0, vm.p.nameForged, false, false)
}

// varObj resolves a variable reference to its object, lazily allocating
// an uninitialized one when the slot is empty (a declaration jumped over
// by goto, or a forward global reference during global initialization).
func (vm *vmState) varObj(vr *varRef) int32 {
	if vr.global {
		if h := vm.globals[vr.slot]; h != 0 {
			return h
		}
		h := vm.alloc(vr.allocT, vr.name)
		vm.globals[vr.slot] = h
		return h
	}
	fr := &vm.frames[len(vm.frames)-1]
	if h := fr.locals[vr.slot]; h != 0 {
		return h
	}
	h := vm.alloc(vr.allocT, vr.name)
	fr.locals[vr.slot] = h
	return h
}

// checkAccess mirrors machine.checkAccess (null, dangling, bounds — in
// that order).
func (vm *vmState) checkAccess(p Value, posIdx int32) {
	if p.isNull() {
		vm.ub(ubNullDeref, posIdx, "")
	}
	o := &vm.objs[p.Obj]
	if !o.live {
		vm.ub(ubDangling, posIdx, "object %s is out of scope", vm.p.names[o.name])
	}
	off := p.off()
	if off < 0 || off >= int64(len(o.cells)) {
		vm.ub(ubOutOfBounds, posIdx, "offset %d of object %s (%d cells)", off, vm.p.names[o.name], len(o.cells))
	}
}

// load mirrors machine.load: aggregates yield their storage pointer,
// scalars check access and initialization.
func (vm *vmState) load(p Value, posIdx int32, aggElem int32, agg bool) Value {
	if agg {
		return mkPtr(p.Obj, p.off(), aggElem)
	}
	vm.checkAccess(p, posIdx)
	cell := &vm.objs[p.Obj].cells[p.off()]
	if !cell.init {
		vm.ub(ubUninitRead, posIdx, "object %s cell %d", vm.objName(p.Obj), p.off())
	}
	return cell.val
}

// store mirrors machine.store.
func (vm *vmState) store(p Value, v Value, posIdx int32) {
	vm.checkAccess(p, posIdx)
	vm.objs[p.Obj].cells[p.off()] = vCell{val: v, init: true}
}

func (vm *vmState) push(v Value) { vm.stack = append(vm.stack, v) }

func (vm *vmState) pop() Value {
	n := len(vm.stack) - 1
	v := vm.stack[n]
	vm.stack = vm.stack[:n]
	return v
}

func (vm *vmState) top() *Value { return &vm.stack[len(vm.stack)-1] }

// ---------------------------------------------------------------- exec loop

func (vm *vmState) exec() {
	// the entry pseudo-frame runs global initialization; it is not a call
	// frame for depth-limit purposes (the tree-walker's globals evaluate
	// with an empty frame stack)
	vm.frames = append(vm.frames, vframe{fn: vm.p.entry})
	fr := &vm.frames[0]
	code := fr.fn.code
	pc := int32(0)
	for {
		in := &code[pc]
		if in.step != 0 {
			vm.steps += int64(in.step)
			if vm.steps > vm.cfg.MaxSteps {
				vm.limit("step budget exhausted at %s", vm.pos(in.pos))
			}
		}
		switch in.op {
		case opStep:
			// steps already charged above

		case opConst:
			vm.push(vm.p.consts[in.a])

		case opStr:
			h := vm.strObjs[in.a]
			if h == 0 {
				s := vm.p.strs[in.a]
				h = vm.allocRaw(int32(len(s)+1), -1, vm.p.nameStrlit, true, true)
				cells := vm.objs[h].cells
				for i := 0; i < len(s); i++ {
					cells[i] = vCell{val: vm.p.tt.mkInt(int64(s[i]), basicChar), init: true}
				}
				cells[len(s)] = vCell{val: vm.p.tt.mkInt(0, basicChar), init: true}
				vm.strObjs[in.a] = h
			}
			vm.push(mkPtr(h, 0, basicChar))

		case opLoadVar:
			vr := &vm.p.varRefs[in.a]
			h := vm.varObj(vr)
			switch k := vm.p.tt.entries[vr.allocT].kind; k {
			case tkArray, tkStruct:
				vm.push(mkPtr(h, 0, vr.elem))
			default:
				cell := &vm.objs[h].cells[0]
				if !cell.init {
					vm.ub(ubUninitRead, in.pos, "object %s cell %d", vm.p.names[vr.name], 0)
				}
				vm.push(cell.val)
			}

		case opAddrVar:
			vr := &vm.p.varRefs[in.a]
			h := vm.varObj(vr)
			vm.push(mkPtr(h, 0, vr.elem))

		case opLoadPtr:
			p := vm.pop()
			vm.push(vm.load(p, in.pos, in.a, in.b != 0))

		case opLoadPtrKeep:
			p := *vm.top()
			vm.push(vm.load(p, in.pos, in.a, in.b != 0))

		case opCheckPtr:
			if vm.top().Kind != kPtr {
				vm.ub(ubNullDeref, in.pos, "%s", vm.p.msgs[in.a])
			}

		case opIndexAddr:
			idx := vm.pop()
			base := vm.pop()
			if base.Kind != kPtr {
				vm.ub(ubNullDeref, in.pos, "indexing non-pointer value")
			}
			if idx.Kind != kInt {
				vm.ub(ubOutOfBounds, in.pos, "non-integer index")
			}
			scale := int64(vm.p.tt.cells(base.TIdx))
			vm.push(mkPtr(base.Obj, base.off()+iOf(idx)*scale, vm.p.tt.elemOf(base.TIdx)))

		case opMemberAddr:
			base := vm.pop()
			vm.push(mkPtr(base.Obj, base.off()+int64(in.a), in.b))

		case opBinop:
			y := vm.pop()
			x := vm.pop()
			vm.push(vm.binop(in.a, x, y, in.pos))

		// Superinstructions: the absorbed second instruction sits at pc+1
		// as the operand word (see fuseCode); pc advances by 2.
		case opLoadVarBinop:
			vr := &vm.p.varRefs[in.a]
			h := vm.varObj(vr)
			cell := &vm.objs[h].cells[0]
			if !cell.init {
				vm.ub(ubUninitRead, in.pos, "object %s cell %d", vm.p.names[vr.name], 0)
			}
			nxt := &code[pc+1]
			x := vm.pop()
			vm.push(vm.binop(nxt.a, x, cell.val, nxt.pos))
			pc += 2
			continue

		case opConstBinop:
			nxt := &code[pc+1]
			x := vm.pop()
			vm.push(vm.binop(nxt.a, x, vm.p.consts[in.a], nxt.pos))
			pc += 2
			continue

		case opBinopJz:
			y := vm.pop()
			x := vm.pop()
			if vm.binop(in.a, x, y, in.pos).isZero() {
				pc = code[pc+1].a
			} else {
				pc += 2
			}
			continue

		case opBinopJnz:
			y := vm.pop()
			x := vm.pop()
			if !vm.binop(in.a, x, y, in.pos).isZero() {
				pc = code[pc+1].a
			} else {
				pc += 2
			}
			continue

		case opConstStore:
			nxt := &code[pc+1]
			p := vm.pop()
			cv := vm.convertAt(vm.p.consts[in.a], nxt.a, nxt.pos)
			vm.store(p, cv, nxt.pos)
			vm.push(cv)
			pc += 2
			continue

		case opNot:
			v := vm.pop()
			vm.push(boolValue(v.isZero()))

		case opNeg:
			v := vm.pop()
			if v.Kind == kFloat {
				vm.push(vm.p.tt.mkFloat(-fOf(v), v.TIdx))
			} else {
				t := typeOf(v)
				zero := Value{Kind: kInt, TIdx: t}
				vm.push(vm.intArith(bopSub, zero, v, in.pos, t))
			}

		case opBitNot:
			v := vm.pop()
			if v.Kind != kInt {
				vm.ub(ubShift, in.pos, "~ on non-integer")
			}
			t := promote(typeOf(v))
			vm.push(vm.p.tt.mkInt(^iOf(v), t))

		case opIncDec:
			p := vm.pop()
			old := vm.load(p, in.pos, in.a, in.b&incAgg != 0)
			op := bopAdd
			if in.b&incDec != 0 {
				op = bopSub
			}
			one := Value{Kind: kInt, Bits: 1, TIdx: basicInt}
			nv := vm.addSub(op, old, one, in.pos, typeOf(old))
			vm.store(p, nv, in.pos)
			if in.b&incPost != 0 {
				vm.push(old)
			} else {
				vm.push(nv)
			}

		case opConv:
			v := vm.pop()
			vm.push(vm.convertAt(v, in.a, in.pos))

		case opJmp:
			pc = in.a
			continue

		case opJz:
			if vm.pop().isZero() {
				pc = in.a
				continue
			}

		case opJnz:
			if !vm.pop().isZero() {
				pc = in.a
				continue
			}

		case opBool:
			v := vm.pop()
			vm.push(boolValue(!v.isZero()))

		case opPop:
			vm.stack = vm.stack[:len(vm.stack)-1]

		case opStoreConv:
			v := vm.pop()
			p := vm.pop()
			cv := vm.convertAt(v, in.a, in.pos)
			vm.store(p, cv, in.pos)
			vm.push(cv)

		case opStructCopy:
			rv := vm.pop()
			lhs := vm.pop()
			if rv.Kind != kPtr {
				vm.ub(ubOutOfBounds, in.pos, "struct assignment from non-struct")
			}
			n := int64(in.a)
			for i := int64(0); i < n; i++ {
				src := mkPtr(rv.Obj, rv.off()+i, rv.TIdx)
				vm.checkAccess(src, in.pos)
				cell := &vm.objs[rv.Obj].cells[rv.off()+i]
				if !cell.init {
					vm.ub(ubUninitRead, in.pos, "copy of uninitialized struct field")
				}
				vm.store(mkPtr(lhs.Obj, lhs.off()+i, lhs.TIdx), cell.val, in.pos)
			}
			vm.push(mkPtr(lhs.Obj, lhs.off(), in.b))

		case opCallV, opCallD:
			fn2 := vm.p.fns[in.a]
			if len(vm.frames)-1 >= vm.cfg.MaxDepth {
				vm.limit("call depth exceeded at %s", vm.pos(in.pos))
			}
			nargs := int(in.b)
			argBase := len(vm.stack) - nargs
			n := len(vm.frames)
			if n < cap(vm.frames) {
				vm.frames = vm.frames[:n+1]
			} else {
				vm.frames = append(vm.frames, vframe{})
			}
			nf := &vm.frames[n]
			fr = &vm.frames[n-1] // re-resolve: append may have moved the slice
			nf.fn = fn2
			nf.locals = resizeSlots(nf.locals, fn2.nslots)
			nf.retpc = pc + 1
			nf.callPos = in.pos
			nf.want = in.op == opCallV
			nf.isMain = false
			for pi := range fn2.params {
				prm := &fn2.params[pi]
				h := vm.alloc(prm.allocT, prm.name)
				var v Value
				if pi < nargs {
					v = vm.convertAt(vm.stack[argBase+pi], prm.convT, in.pos)
				} else {
					v = vm.p.consts[prm.zero]
				}
				vm.objs[h].cells[0] = vCell{val: v, init: true}
				if prm.slot >= 0 {
					nf.locals[prm.slot] = h
				}
			}
			vm.stack = vm.stack[:argBase]
			fr = nf
			code = fn2.code
			pc = 0
			continue

		case opCallMain:
			if vm.p.mainFn < 0 {
				vm.limit("no main function")
			}
			fn2 := vm.p.fns[vm.p.mainFn]
			n := len(vm.frames)
			if n < cap(vm.frames) {
				vm.frames = vm.frames[:n+1]
			} else {
				vm.frames = append(vm.frames, vframe{})
			}
			nf := &vm.frames[n]
			nf.fn = fn2
			nf.locals = resizeSlots(nf.locals, fn2.nslots)
			nf.retpc = pc + 1
			nf.callPos = in.pos
			nf.want = false
			nf.isMain = true
			for pi := range fn2.params {
				prm := &fn2.params[pi]
				h := vm.alloc(prm.allocT, prm.name)
				vm.objs[h].cells[0] = vCell{val: vm.p.consts[prm.zero], init: true}
				if prm.slot >= 0 {
					nf.locals[prm.slot] = h
				}
			}
			fr = nf
			code = fn2.code
			pc = 0
			continue

		case opRetVal, opRetNone:
			if in.op == opRetVal {
				vm.retVal = vm.pop()
				vm.hasRet = true
			} else {
				vm.hasRet = false
			}
			for _, h := range fr.locals {
				if h != 0 {
					if o := &vm.objs[h]; !o.persistent {
						o.live = false
					}
				}
			}
			retpc, want, isMain, callPos := fr.retpc, fr.want, fr.isMain, fr.callPos
			fnName := fr.fn.name
			vm.frames = vm.frames[:len(vm.frames)-1]
			fr = &vm.frames[len(vm.frames)-1]
			code = fr.fn.code
			pc = retpc
			if isMain {
				if vm.hasRet {
					vm.exit = int(uint8(iOf(vm.retVal)))
				} else {
					vm.exit = 0 // C99 5.1.2.2.3: falling off main returns 0
				}
			} else if want {
				if !vm.hasRet {
					vm.ub(ubNoReturnValue, callPos, "value of %s() used but function returned without a value", fnName)
				}
				vm.push(vm.retVal)
			}
			continue

		case opGotoEscape:
			vm.ub(ubOutOfBounds, fr.callPos, "goto to label %q escaped function", vm.p.names[in.a])

		case opAllocVar:
			d := &vm.p.decls[in.a]
			h := vm.alloc(d.allocT, d.name)
			fr.locals[d.slot] = h
			if in.b != 0 {
				vm.push(mkPtr(h, 0, tidxNone))
			}

		case opAllocGlobal:
			d := &vm.p.decls[in.a]
			h := vm.alloc(d.allocT, d.name)
			vm.globals[d.slot] = h
			if in.b != 0 {
				vm.push(mkPtr(h, 0, tidxNone))
			}

		case opInitCell:
			v := vm.pop()
			p := vm.top()
			cv := vm.convertAt(v, in.a, in.pos)
			vm.objs[p.Obj].cells[in.b] = vCell{val: cv, init: true}

		case opZeroFill:
			p := vm.top()
			zv := vm.p.consts[in.a]
			cells := vm.objs[p.Obj].cells
			for i := range cells {
				if !cells[i].init {
					cells[i] = vCell{val: zv, init: true}
				}
			}

		case opZeroAll:
			p := vm.top()
			zv := vm.p.consts[in.a]
			cells := vm.objs[p.Obj].cells
			for i := range cells {
				cells[i] = vCell{val: zv, init: true}
			}

		case opStaticBegin:
			si := &vm.p.statics[in.a]
			if vm.statics[si.sslot] != 0 {
				pc = in.b
				continue
			}
			vm.nextID++
			h := vm.allocRaw(vm.p.tt.cells(si.allocT), vm.nextID, si.name, true, true)
			vm.statics[si.sslot] = h
			vm.push(mkPtr(h, 0, tidxNone))

		case opStaticBind:
			si := &vm.p.statics[in.a]
			fr.locals[si.lslot] = vm.statics[si.sslot]

		case opPrintfBegin:
			fv := vm.pop()
			format := vm.readCString(fv, in.pos)
			vm.pstates = append(vm.pstates, pstate{format: format, pos: in.pos})
			if !vm.pfAdvance() {
				vm.pfFinish()
				pc = in.b
				continue
			}

		case opPrintfFeed:
			v := vm.pop()
			vm.pfApply(v)
			if !vm.pfAdvance() {
				vm.pfFinish()
				pc = in.b
				continue
			}

		case opPrintfNoArg:
			vm.limit("printf: missing argument for conversion at %s", vm.pos(in.pos))

		case opAbort:
			panic(abortPanic{})

		case opExit:
			code := 0
			if in.b != 0 {
				code = int(uint8(iOf(vm.pop())))
			}
			panic(exitPanic{code: code})

		case opUB:
			vm.ub(in.a, in.pos, "%s", vm.p.msgs[in.b])

		case opLimit:
			panic(limitPanic{&interp.LimitError{Msg: vm.p.msgs[in.a]}})

		case opHalt:
			return

		default:
			panic(fmt.Sprintf("refvm: unknown opcode %d", in.op))
		}
		pc++
	}
}

func boolValue(b bool) Value {
	if b {
		return Value{Kind: kInt, Bits: 1, TIdx: basicInt}
	}
	return Value{Kind: kInt, TIdx: basicInt}
}

// ---------------------------------------------------------------- arithmetic
//
// Ports of interp's binop/intArith/shift/floatOp/ptrOp/convert onto the
// compact value word, bit for bit: same UB conditions, same messages,
// same result typing (including the quirks around non-basic types).

func (vm *vmState) binop(op int32, x, y Value, posIdx int32) Value {
	if x.Kind == kPtr || y.Kind == kPtr {
		return vm.ptrOp(op, x, y, posIdx)
	}
	if x.Kind == kFloat || y.Kind == kFloat {
		return vm.floatOp(op, x, y, posIdx)
	}
	switch op {
	case bopAdd, bopSub, bopMul, bopDiv, bopMod:
		t := usual(typeOf(x), typeOf(y))
		return vm.intArith(op, x, y, posIdx, t)
	case bopShl, bopShr:
		return vm.shift(op, x, y, posIdx)
	case bopAnd, bopOr, bopXor:
		t := usual(typeOf(x), typeOf(y))
		var r int64
		switch op {
		case bopAnd:
			r = iOf(x) & iOf(y)
		case bopOr:
			r = iOf(x) | iOf(y)
		default:
			r = iOf(x) ^ iOf(y)
		}
		return vm.p.tt.mkInt(r, t)
	case bopEq, bopNe, bopLt, bopGt, bopLe, bopGe:
		return boolValue(intCompare(op, x, y))
	default:
		panic(fmt.Sprintf("refvm: unknown binop code %d", op))
	}
}

func intCompare(op int32, x, y Value) bool {
	t := usual(typeOf(x), typeOf(y))
	if isUnsigned(t) {
		a, b := uint64(truncTidx(iOf(x), t)), uint64(truncTidx(iOf(y), t))
		if w := widthOf(t); w < 64 {
			mask := uint64(1)<<w - 1
			a &= mask
			b &= mask
		}
		switch op {
		case bopEq:
			return a == b
		case bopNe:
			return a != b
		case bopLt:
			return a < b
		case bopGt:
			return a > b
		case bopLe:
			return a <= b
		default:
			return a >= b
		}
	}
	a, b := iOf(x), iOf(y)
	switch op {
	case bopEq:
		return a == b
	case bopNe:
		return a != b
	case bopLt:
		return a < b
	case bopGt:
		return a > b
	case bopLe:
		return a <= b
	default:
		return a >= b
	}
}

// addSub mirrors machine.addSub.
func (vm *vmState) addSub(op int32, x, y Value, posIdx int32, t int32) Value {
	if x.Kind == kPtr {
		return vm.ptrOp(op, x, y, posIdx)
	}
	if x.Kind == kFloat {
		return vm.floatOp(op, x, y, posIdx)
	}
	return vm.intArith(op, x, y, posIdx, t)
}

func (vm *vmState) intArith(op int32, x, y Value, posIdx int32, t int32) Value {
	if isUnsigned(t) {
		w := widthOf(t)
		a, b := uint64(iOf(x)), uint64(iOf(y))
		if w < 64 {
			mask := uint64(1)<<w - 1
			a &= mask
			b &= mask
		}
		var r uint64
		switch op {
		case bopAdd:
			r = a + b
		case bopSub:
			r = a - b
		case bopMul:
			r = a * b
		case bopDiv:
			if b == 0 {
				vm.ub(ubDivByZero, posIdx, "")
			}
			r = a / b
		case bopMod:
			if b == 0 {
				vm.ub(ubDivByZero, posIdx, "")
			}
			r = a % b
		}
		return vm.p.tt.mkInt(int64(r), t)
	}
	a, b := iOf(x), iOf(y)
	var r int64
	switch op {
	case bopAdd:
		r = a + b
		if (a > 0 && b > 0 && r < a) || (a < 0 && b < 0 && r > a) {
			vm.ub(ubSignedOverflow, posIdx, "%d + %d", a, b)
		}
	case bopSub:
		r = a - b
		if (b < 0 && r < a) || (b > 0 && r > a) {
			vm.ub(ubSignedOverflow, posIdx, "%d - %d", a, b)
		}
	case bopMul:
		r = a * b
		if a != 0 && (r/a != b || (a == -1 && b == math.MinInt64)) {
			vm.ub(ubSignedOverflow, posIdx, "%d * %d", a, b)
		}
	case bopDiv:
		if b == 0 {
			vm.ub(ubDivByZero, posIdx, "")
		}
		if a == math.MinInt64 && b == -1 {
			vm.ub(ubSignedOverflow, posIdx, "INT_MIN / -1")
		}
		r = a / b
	case bopMod:
		if b == 0 {
			vm.ub(ubDivByZero, posIdx, "")
		}
		if a == math.MinInt64 && b == -1 {
			vm.ub(ubSignedOverflow, posIdx, "INT_MIN %% -1")
		}
		r = a % b
	}
	// the result must be representable in t
	if tr := vm.p.tt.trunc(r, t); tr != r {
		vm.ub(ubSignedOverflow, posIdx, "result %d not representable in %s", r, vm.typeName(t))
	}
	return vm.p.tt.mkInt(r, t)
}

// typeName renders a type index for UB messages the way the tree-walker
// formats its cc.Type (%s of a nil interface prints "%!s(<nil>)").
func (vm *vmState) typeName(t int32) interface{} {
	if t < 0 {
		return cc.Type(nil)
	}
	return vm.p.tt.entries[t].typ
}

func (vm *vmState) shift(op int32, x, y Value, posIdx int32) Value {
	t := promote(typeOf(x))
	w := widthOf(t)
	yi := iOf(y)
	if yi < 0 || uint(yi) >= w {
		vm.ub(ubShift, posIdx, "shift count %d for %d-bit type", yi, w)
	}
	if isUnsigned(t) {
		a := uint64(vm.p.tt.trunc(iOf(x), t))
		if w < 64 {
			a &= uint64(1)<<w - 1
		}
		var r uint64
		if op == bopShl {
			r = a << uint(yi)
		} else {
			r = a >> uint(yi)
		}
		return vm.p.tt.mkInt(int64(r), t)
	}
	xi := iOf(x)
	if op == bopShl {
		if xi < 0 {
			vm.ub(ubShift, posIdx, "left shift of negative value %d", xi)
		}
		r := xi << uint(yi)
		if vm.p.tt.trunc(r, t) != r || r < 0 {
			vm.ub(ubShift, posIdx, "left shift overflow")
		}
		return vm.p.tt.mkInt(r, t)
	}
	return vm.p.tt.mkInt(xi>>uint(yi), t)
}

func (vm *vmState) floatOp(op int32, x, y Value, posIdx int32) Value {
	a := toF(x)
	b := toF(y)
	switch op {
	case bopAdd:
		return vm.p.tt.mkFloat(a+b, basicDouble)
	case bopSub:
		return vm.p.tt.mkFloat(a-b, basicDouble)
	case bopMul:
		return vm.p.tt.mkFloat(a*b, basicDouble)
	case bopDiv:
		return vm.p.tt.mkFloat(a/b, basicDouble) // IEEE division by zero is defined
	case bopEq, bopNe, bopLt, bopGt, bopLe, bopGe:
		var r bool
		switch op {
		case bopEq:
			r = a == b
		case bopNe:
			r = a != b
		case bopLt:
			r = a < b
		case bopGt:
			r = a > b
		case bopLe:
			r = a <= b
		default:
			r = a >= b
		}
		return boolValue(r)
	default:
		vm.ub(ubShift, posIdx, "invalid float operation %s", binopNames[op])
		panic("unreachable")
	}
}

func toF(v Value) float64 {
	if v.Kind == kFloat {
		return fOf(v)
	}
	if isUnsigned(typeOf(v)) {
		return float64(uint64(iOf(v)))
	}
	return float64(iOf(v))
}

func (vm *vmState) ptrOp(op int32, x, y Value, posIdx int32) Value {
	switch op {
	case bopAdd, bopSub:
		if x.Kind == kPtr && y.Kind == kInt {
			delta := iOf(y) * int64(vm.p.tt.cells(x.TIdx))
			if op == bopSub {
				delta = -delta
			}
			noff := x.off() + delta
			if x.Obj != 0 {
				if noff < 0 || noff > int64(len(vm.objs[x.Obj].cells)) {
					vm.ub(ubOutOfBounds, posIdx, "pointer arithmetic past object %s", vm.objName(x.Obj))
				}
			}
			return mkPtr(x.Obj, noff, x.TIdx)
		}
		if x.Kind == kInt && y.Kind == kPtr && op == bopAdd {
			return vm.ptrOp(bopAdd, y, x, posIdx)
		}
		if x.Kind == kPtr && y.Kind == kPtr && op == bopSub {
			if x.Obj != y.Obj {
				vm.ub(ubOutOfBounds, posIdx, "subtracting pointers to different objects")
			}
			scale := int64(vm.p.tt.cells(x.TIdx))
			return vm.p.tt.mkInt((x.off()-y.off())/scale, basicLong)
		}
	case bopEq, bopNe:
		same := x.Kind == kPtr && y.Kind == kPtr && x.Obj == y.Obj && x.off() == y.off()
		if x.Kind == kInt && iOf(x) == 0 {
			same = y.isNull()
		}
		if y.Kind == kInt && iOf(y) == 0 {
			same = x.isNull()
		}
		if op == bopNe {
			same = !same
		}
		return boolValue(same)
	case bopLt, bopGt, bopLe, bopGe:
		if x.Kind != kPtr || y.Kind != kPtr || x.Obj != y.Obj {
			vm.ub(ubOutOfBounds, posIdx, "relational comparison of unrelated pointers")
		}
		xo := vm.p.tt.mkInt(x.off(), basicLong)
		yo := vm.p.tt.mkInt(y.off(), basicLong)
		return boolValue(intCompare(op, xo, yo))
	}
	vm.ub(ubOutOfBounds, posIdx, "invalid pointer operation %s", binopNames[op])
	panic("unreachable")
}

// convertAt mirrors machine.convert.
func (vm *vmState) convertAt(v Value, ti int32, posIdx int32) Value {
	if ti < 0 {
		return v
	}
	e := &vm.p.tt.entries[ti]
	switch e.kind {
	case tkPtr:
		elem := e.elem
		switch v.Kind {
		case kPtr:
			return mkPtr(v.Obj, v.off(), elem)
		case kInt:
			if v.Bits == 0 {
				return mkPtr(0, 0, elem)
			}
			// integers forged into pointers dereference as UB later
			return mkPtr(vm.allocForged(), int64(v.Bits), elem)
		}
		return v
	case tkBasic:
		if isFloatTidx(ti) {
			return vm.p.tt.mkFloat(toF(v), ti)
		}
		switch v.Kind {
		case kFloat:
			f := fOf(v)
			if math.IsNaN(f) || f >= 9.3e18 || f <= -9.3e18 {
				vm.ub(ubSignedOverflow, posIdx, "float-to-int conversion of %g", f)
			}
			return vm.p.tt.mkInt(int64(f), ti)
		case kPtr:
			// pointer-to-integer: a stable synthetic address
			addr := int64(0)
			if v.Obj != 0 {
				addr = int64(vm.objs[v.Obj].id)*1_000_000 + v.off()
			}
			return vm.p.tt.mkInt(addr, ti)
		default:
			return vm.p.tt.mkInt(int64(v.Bits), ti)
		}
	}
	return v
}

// ---------------------------------------------------------------- printf

// readCString mirrors machine.readCString.
func (vm *vmState) readCString(v Value, posIdx int32) string {
	if v.Kind != kPtr {
		vm.ub(ubNullDeref, posIdx, "%%s argument is not a pointer")
	}
	var sb []byte
	p := v
	for n := 0; ; n++ {
		if n > 1<<16 {
			vm.limit("unterminated string at %s", vm.pos(posIdx))
		}
		vm.checkAccess(p, posIdx)
		cell := &vm.objs[p.Obj].cells[p.off()]
		if !cell.init {
			vm.ub(ubUninitRead, posIdx, "string read")
		}
		ci := iOf(cell.val)
		if ci == 0 {
			return string(sb)
		}
		sb = append(sb, byte(ci))
		p.Bits++
	}
}

// pfAdvance consumes the top printf state's format string up to the next
// conversion that needs an argument, appending literal text to its
// buffer. It reports whether an argument is now required. The parse is a
// verbatim port of interp.FormatPrintf's spec scanner.
func (vm *vmState) pfAdvance() bool {
	st := &vm.pstates[len(vm.pstates)-1]
	format := st.format
	for st.i < len(format) {
		ch := format[st.i]
		if ch != '%' {
			st.buf = append(st.buf, ch)
			st.i++
			continue
		}
		st.i++
		if st.i >= len(format) {
			return false
		}
		spec := "%"
		for st.i < len(format) && (format[st.i] == '-' || format[st.i] == '0' || format[st.i] == '+' || format[st.i] == ' ') {
			spec += string(format[st.i])
			st.i++
		}
		for st.i < len(format) && format[st.i] >= '0' && format[st.i] <= '9' {
			spec += string(format[st.i])
			st.i++
		}
		if st.i < len(format) && format[st.i] == '.' {
			spec += "."
			st.i++
			for st.i < len(format) && format[st.i] >= '0' && format[st.i] <= '9' {
				spec += string(format[st.i])
				st.i++
			}
		}
		long := 0
		for st.i < len(format) && (format[st.i] == 'l' || format[st.i] == 'h') {
			if format[st.i] == 'l' {
				long++
			}
			st.i++
		}
		if st.i >= len(format) {
			return false
		}
		conv := format[st.i]
		st.i++
		switch conv {
		case '%':
			st.buf = append(st.buf, '%')
		case 'd', 'i', 'u', 'x', 'X', 'c', 'f', 'g', 'e', 's', 'p':
			st.spec, st.conv, st.long = spec, conv, long
			return true
		default:
			st.buf = append(st.buf, spec...)
			st.buf = append(st.buf, conv)
		}
	}
	return false
}

// pfApply formats one argument with the pending conversion, mirroring the
// corresponding FormatPrintf case.
func (vm *vmState) pfApply(v Value) {
	st := &vm.pstates[len(vm.pstates)-1]
	switch st.conv {
	case 'd', 'i':
		n := iOf(v)
		if st.long == 0 {
			n = int64(int32(n))
		}
		st.buf = appendf(st.buf, st.spec+"d", n)
	case 'u':
		var n uint64
		if st.long == 0 {
			n = uint64(uint32(iOf(v)))
		} else {
			n = uint64(iOf(v))
		}
		st.buf = appendf(st.buf, st.spec+"d", n)
	case 'x', 'X':
		var n uint64
		if st.long == 0 {
			n = uint64(uint32(iOf(v)))
		} else {
			n = uint64(iOf(v))
		}
		st.buf = appendf(st.buf, st.spec+string(st.conv), n)
	case 'c':
		st.buf = append(st.buf, byte(iOf(v)))
	case 'f', 'g', 'e':
		st.buf = appendf(st.buf, st.spec+string(st.conv), toF(v))
	case 's':
		s := vm.readCString(v, st.pos)
		st.buf = append(st.buf, s...)
	case 'p':
		if v.Kind == kPtr && !v.isNull() {
			st.buf = appendf(st.buf, "0x%x", int64(vm.objs[v.Obj].id)*1_000_000+v.off())
		} else {
			st.buf = append(st.buf, "(nil)"...)
		}
	}
}

func appendf(buf []byte, format string, args ...interface{}) []byte {
	return fmt.Appendf(buf, format, args...)
}

// pfFinish commits the completed printf's buffer to the output (checking
// the output budget, like builtinPrintf) and pushes its byte count.
func (vm *vmState) pfFinish() {
	st := &vm.pstates[len(vm.pstates)-1]
	vm.out = append(vm.out, st.buf...)
	n := len(st.buf)
	vm.pstates = vm.pstates[:len(vm.pstates)-1]
	if len(vm.out) > vm.cfg.MaxOutput {
		vm.limit("output budget exhausted")
	}
	vm.push(Value{Kind: kInt, Bits: uint64(int64(n)), TIdx: basicInt})
}
