// Package refvm is the bytecode reference oracle: the UB-checking
// reference semantics of the cc C subset (see internal/interp), compiled
// once per skeleton template into a compact, flat bytecode and executed on
// dense register/slot frames with 24-byte {kind, bits, type-index} values.
//
// It exists for one reason: after PR 3–4 made variant instantiation and
// the minicc backend nearly free, the tree-walking reference interpreter
// was ~85% of campaign hot-path CPU. refvm applies the repository's
// template discipline to the oracle itself — all variants of a skeleton
// share their syntax, so the oracle's per-variant work shrinks to
// patching the hole-fed variable references recorded during compilation
// (the same trace-and-patch idea as minicc.Cache) and running the
// bytecode.
//
// Equivalence contract: for every analyzed program, Run and Cache.Run
// return a Result observationally identical to internal/interp — the same
// output bytes, exit status, abort flag, undefined-behavior verdict (kind
// and position), resource-limit verdict, and step count (the campaign
// derives the compiled binary's execution budget from the oracle's steps,
// so even Steps must match for reports to stay byte-identical across
// oracles). UB message text is matched on a best-effort basis; the
// structured fields are the contract, pinned by the package's
// corpus-wide differential tests.
//
// Concurrency and ownership: package-level Run is safe from any goroutine
// (private compile + private machine per call). A Cache is strictly
// single-goroutine — campaign workers each check one out per shard task —
// and the Result of Cache.Run is caller-owned (no aliasing of pooled
// state), while the machine's slab, frames, and stacks are reset, not
// reallocated, between runs.
package refvm

import (
	"spe/internal/cc"
	"spe/internal/interp"
)

// Run compiles prog fresh and executes it on a private machine. Use a
// Cache on the campaign hot path, which compiles once per skeleton.
func Run(prog *cc.Program, cfg Config) *interp.Result {
	p := compileProgram(prog, nil)
	return newVMState().run(p, cfg)
}

// template is the cached compilation of one skeleton template program,
// plus the patch bookkeeping that retargets its hole sites per variant.
type template struct {
	p      *program
	holes  []*cc.Ident
	holeFn []int // each hole's enclosing function index
	// cur tracks each hole's currently patched symbol; patching diffs the
	// requested filling against it, so walking stride-neighbor variants
	// rewrites only the holes that moved.
	cur []*cc.Symbol
	// patchInfo memoizes the per-symbol slot descriptor (and whether the
	// symbol is patchable in place) — the candidate set of a hole is
	// finite, so each symbol is resolved once per template.
	patchInfo map[*cc.Symbol]patchEntry
}

type patchEntry struct {
	vr varRef
	ok bool
}

// Cache is the per-worker reusable oracle backend: bytecode templates
// keyed on the identity of the analyzed template program, plus the pooled
// virtual machine. It is the oracle analogue of minicc.Cache and follows
// the same contract: strictly single-goroutine, holes must be the same
// slice identity-wise for every Run with the same prog, and rebinding a
// hole in place (skeleton.Instance.Instantiate) between Runs is the
// supported way to select a variant.
type Cache struct {
	templates map[*cc.Program]*template
	vm        *vmState
	stats     CacheStats
}

// CacheStats counts the oracle cache's template activity: bytecode
// templates compiled (once per skeleton per cache), runs served by
// patching the moved holes in place, runs that fell back to a fresh
// compilation of the patched tree (type-shape drift), runs by dispatch
// mode, and batched-execution activity (RunBatch runs and the number of
// batches they arrived in). Plain ints — the cache is single-goroutine —
// read by the campaign's telemetry once per shard.
type CacheStats struct {
	TemplateCompiles int64
	PatchRuns        int64
	Fallbacks        int64
	ThreadedRuns     int64
	SwitchRuns       int64
	BatchRuns        int64
	Batches          int64
}

// Sub returns the stats delta since base.
func (s CacheStats) Sub(base CacheStats) CacheStats {
	return CacheStats{
		TemplateCompiles: s.TemplateCompiles - base.TemplateCompiles,
		PatchRuns:        s.PatchRuns - base.PatchRuns,
		Fallbacks:        s.Fallbacks - base.Fallbacks,
		ThreadedRuns:     s.ThreadedRuns - base.ThreadedRuns,
		SwitchRuns:       s.SwitchRuns - base.SwitchRuns,
		BatchRuns:        s.BatchRuns - base.BatchRuns,
		Batches:          s.Batches - base.Batches,
	}
}

// Stats returns the cache's cumulative activity counters.
func (ca *Cache) Stats() CacheStats { return ca.stats }

// NewCache returns an empty oracle cache.
func NewCache() *Cache {
	return &Cache{templates: make(map[*cc.Program]*template), vm: newVMState()}
}

// Run executes the variant currently bound into prog's holes. The
// template is compiled on first use; later calls patch only the moved
// holes' recorded sites. A hole rebound to a symbol the template cannot
// patch in place (a different storage class is fine — slots carry their
// class — but a type change would alter the compiled load/decay shape)
// falls back to a fresh compilation of the already-patched tree, exactly
// like minicc.Cache's fresh-lowering fallback. Unlike minicc, '&'-holes
// need no fallback: the oracle has no register promotion to invalidate.
func (ca *Cache) Run(prog *cc.Program, holes []*cc.Ident, cfg Config) *interp.Result {
	tm := ca.template(prog, holes)
	ca.countDispatch(cfg)
	return ca.runPatched(tm, prog, holes, cfg)
}

// RunBatch executes n variants of one skeleton on a single checked-out
// VM without returning pooled state between runs: the template is looked
// up (or compiled) once, then for each i the caller's bind(i) rebinds
// the instance's holes in place, the cache re-patches only the moved
// sites, runs, and hands the Result to yield(i, res). A bind or yield
// error stops the batch and is returned. Results are caller-owned, like
// Cache.Run's. This is the campaign worker's shard path: neighboring
// fills differ in few holes, so per-variant oracle work collapses to a
// handful of varRef rewrites plus the run itself.
func (ca *Cache) RunBatch(prog *cc.Program, holes []*cc.Ident, cfg Config, n int,
	bind func(i int) error, yield func(i int, res *interp.Result) error) error {
	tm := ca.template(prog, holes)
	ca.stats.Batches++
	for i := 0; i < n; i++ {
		if err := bind(i); err != nil {
			return err
		}
		ca.stats.BatchRuns++
		ca.countDispatch(cfg)
		if err := yield(i, ca.runPatched(tm, prog, holes, cfg)); err != nil {
			return err
		}
	}
	return nil
}

// template returns prog's cached compilation, compiling it on first use.
func (ca *Cache) template(prog *cc.Program, holes []*cc.Ident) *template {
	tm, ok := ca.templates[prog]
	if !ok {
		ca.stats.TemplateCompiles++
		tm = &template{
			p:         compileProgram(prog, holes),
			holes:     holes,
			holeFn:    make([]int, len(holes)),
			cur:       make([]*cc.Symbol, len(holes)),
			patchInfo: make(map[*cc.Symbol]patchEntry),
		}
		for i, id := range holes {
			tm.cur[i] = id.Sym
			tm.holeFn[i] = id.FuncIdx
		}
		ca.templates[prog] = tm
	}
	return tm
}

// runPatched patches the moved holes and runs the template, falling back
// to a fresh compilation when a hole cannot be patched in place.
func (ca *Cache) runPatched(tm *template, prog *cc.Program, holes []*cc.Ident, cfg Config) *interp.Result {
	if !tm.patch(holes) {
		// fresh-compile fallback: the patched tree is authoritative
		ca.stats.Fallbacks++
		return ca.vm.run(compileProgram(prog, nil), cfg)
	}
	ca.stats.PatchRuns++
	return ca.vm.run(tm.p, cfg)
}

func (ca *Cache) countDispatch(cfg Config) {
	if cfg.Dispatch == DispatchSwitch {
		ca.stats.SwitchRuns++
	} else {
		ca.stats.ThreadedRuns++
	}
}

// patch retargets the sites of every hole whose symbol moved since the
// last call, reporting false when some hole cannot be patched in place
// (the template stays consistent either way: holes patched before the
// failing one keep their new binding and cur reflects it).
func (tm *template) patch(holes []*cc.Ident) bool {
	for i, id := range holes {
		sym := id.Sym
		if sym == tm.cur[i] {
			continue
		}
		pe, ok := tm.patchInfo[sym]
		if !ok {
			pe = tm.resolve(sym)
			tm.patchInfo[sym] = pe
		}
		// the compiled load/decay shape is a function of the hole's type;
		// every candidate the skeleton admits shares it, and a local
		// candidate is necessarily visible in the hole's own function —
		// but a caller rebinding holes by hand could violate either, so
		// verify and fall back rather than corrupt the template.
		if !pe.ok || pe.vr.allocT != tm.p.holeT[i] ||
			(sym.FuncIdx >= 0 && sym.FuncIdx != tm.holeFn[i]) {
			return false
		}
		for _, vi := range tm.p.holeSites[i] {
			tm.p.varRefs[vi] = pe.vr
		}
		tm.cur[i] = sym
	}
	return true
}

// resolve builds the slot descriptor of one candidate symbol from the
// template program's deterministic slot assignment.
func (tm *template) resolve(sym *cc.Symbol) patchEntry {
	p := tm.p
	if sym == nil || sym.ID < 0 || sym.ID >= len(p.slotOf) {
		return patchEntry{}
	}
	vr := varRef{
		allocT: p.tt.intern(sym.Type),
		elem:   p.tt.intern(elemOfType(sym.Type)),
		name:   p.internName(sym.Name),
	}
	if sym.FuncIdx < 0 {
		vr.global = true
		vr.slot = p.gslotOf[sym.ID]
	} else {
		vr.slot = p.slotOf[sym.ID]
	}
	return patchEntry{vr: vr, ok: true}
}
