package experiments

import (
	"encoding/json"
	"fmt"
	"math/big"
	"os"
	"time"

	"spe/internal/cc"
	"spe/internal/corpus"
	"spe/internal/harness"
	"spe/internal/skeleton"
	"spe/internal/spe"
)

// VariantsBenchResult is the machine-readable outcome of the variants/sec
// benchmark (emitted as BENCH_variants.json by cmd/spebench). It reports
// two stages separately because they answer different questions:
//
//   - the instantiation stage isolates exactly what the AST-resident
//     refactor removed — producing an analyzed variant program from an
//     enumeration index, historically render→re-lex→re-parse→re-sema,
//     now an in-place hole patch on a pooled template clone;
//   - the campaign stage is the full differential pipeline (reference
//     interpretation plus every compiler configuration), where the front
//     end is one cost among many, so its speedup is necessarily smaller.
type VariantsBenchResult struct {
	Workers int `json:"workers"`
	Files   int `json:"files"`
	// instantiation stage (variants prepared per second)
	InstVariants  int     `json:"instantiation_variants"`
	InstRenderVPS float64 `json:"instantiation_render_variants_per_sec"`
	InstASTVPS    float64 `json:"instantiation_ast_variants_per_sec"`
	InstSpeedup   float64 `json:"instantiation_speedup"`
	// full campaign stage (variants tested per second)
	CampaignVariants  int     `json:"campaign_variants"`
	CampaignRenderVPS float64 `json:"campaign_render_variants_per_sec"`
	CampaignASTVPS    float64 `json:"campaign_ast_variants_per_sec"`
	CampaignSpeedup   float64 `json:"campaign_speedup"`
	// ReportsIdentical confirms the render and AST campaigns produced
	// byte-identical reports; ParanoidChecked additionally confirms a full
	// campaign passed the -paranoid per-variant render+reparse+rebinding
	// cross-check.
	ReportsIdentical bool `json:"reports_identical"`
	ParanoidChecked  bool `json:"paranoid_checked"`
}

// MeasureInstantiation times the variant-preparation stage alone over the
// given corpus: producing an analyzed program for each of the first
// perFile enumeration indices of every file, either AST-resident
// (Space.ProgramAt: in-place hole patching on a pooled template clone) or
// through the historical render→re-lex→re-parse→re-sema round trip. It is
// single-threaded — the stage is identical per worker, and one thread
// keeps the comparison noise-free. Shared by VariantsBench and the
// top-level BenchmarkInstantiation* benchmarks so both measure the same
// loop.
func MeasureInstantiation(progs []string, perFile int64, ast bool) (variants int, seconds float64, err error) {
	sks := make([]*skeleton.Skeleton, 0, len(progs))
	for i, src := range progs {
		f, err := cc.Parse(src)
		if err != nil {
			return 0, 0, fmt.Errorf("experiments: instantiation: corpus[%d]: %w", i, err)
		}
		prog, err := cc.Analyze(f)
		if err != nil {
			return 0, 0, fmt.Errorf("experiments: instantiation: corpus[%d]: %w", i, err)
		}
		sk, err := skeleton.Build(prog)
		if err != nil {
			return 0, 0, fmt.Errorf("experiments: instantiation: corpus[%d]: %w", i, err)
		}
		sks = append(sks, sk)
	}
	start := time.Now()
	n := 0
	for _, sk := range sks {
		space, err := spe.NewSpace(sk, spe.Options{Mode: spe.ModeCanonical})
		if err != nil {
			return 0, 0, err
		}
		total := space.Total()
		idx := new(big.Int)
		for j := int64(0); j < perFile; j++ {
			idx.SetInt64(j)
			if idx.Cmp(total) >= 0 {
				break
			}
			if ast {
				_, release, err := space.ProgramAt(idx)
				if err != nil {
					return 0, 0, err
				}
				release()
			} else {
				src, err := space.RenderAt(idx)
				if err != nil {
					return 0, 0, err
				}
				f, err := cc.Parse(src)
				if err != nil {
					return 0, 0, err
				}
				if _, err := cc.Analyze(f); err != nil {
					return 0, 0, err
				}
			}
			n++
		}
	}
	return n, time.Since(start).Seconds(), nil
}

// VariantsBench measures variants/sec through both pipeline flavors and
// cross-checks their equivalence. With scale.Paranoid it additionally runs
// a -paranoid campaign (every variant re-parsed and its symbol bindings
// asserted against the in-place instantiation). When scale.BenchJSON is
// set the result is also written there as JSON.
func VariantsBench(scale Scale) (string, error) {
	scale = scale.withDefaults()
	progs := corpus.Seeds()
	progs = append(progs, corpus.Generate(corpus.Config{N: scale.CampaignCorpus, Seed: scale.Seed + 1})...)
	res := &VariantsBenchResult{Workers: scale.Workers, Files: len(progs)}

	perFile := int64(scale.MaxVariants)
	var renderSec, astSec float64
	var err error
	res.InstVariants, renderSec, err = MeasureInstantiation(progs, perFile, false)
	if err != nil {
		return "", fmt.Errorf("experiments: variants: render instantiation: %w", err)
	}
	if _, astSec, err = MeasureInstantiation(progs, perFile, true); err != nil {
		return "", fmt.Errorf("experiments: variants: ast instantiation: %w", err)
	}
	res.InstRenderVPS = float64(res.InstVariants) / renderSec
	res.InstASTVPS = float64(res.InstVariants) / astSec
	res.InstSpeedup = res.InstASTVPS / res.InstRenderVPS

	// stage 2: the full differential campaign, both flavors
	campaign := func(renderPath, paranoid bool) (*harness.Report, float64, error) {
		cfg := harness.Config{
			Corpus:             progs,
			Versions:           []string{"trunk"},
			Threshold:          -1,
			MaxVariantsPerFile: scale.MaxVariants,
			Workers:            scale.Workers,
			ForceRenderPath:    renderPath,
			Paranoid:           paranoid,
			Telemetry:          scale.Telemetry,
		}
		start := time.Now()
		rep, err := harness.Run(cfg)
		return rep, time.Since(start).Seconds(), err
	}
	renderRep, renderCampSec, err := campaign(true, false)
	if err != nil {
		return "", fmt.Errorf("experiments: variants: render campaign: %w", err)
	}
	astRep, astCampSec, err := campaign(false, false)
	if err != nil {
		return "", fmt.Errorf("experiments: variants: ast campaign: %w", err)
	}
	res.CampaignVariants = astRep.Stats.Variants
	res.CampaignRenderVPS = float64(renderRep.Stats.Variants) / renderCampSec
	res.CampaignASTVPS = float64(astRep.Stats.Variants) / astCampSec
	res.CampaignSpeedup = res.CampaignASTVPS / res.CampaignRenderVPS
	res.ReportsIdentical = renderRep.Format() == astRep.Format()
	if !res.ReportsIdentical {
		return "", fmt.Errorf("experiments: variants: AST-path report diverges from render path")
	}
	if scale.Paranoid {
		paranoidRep, _, err := campaign(false, true)
		if err != nil {
			return "", fmt.Errorf("experiments: variants: paranoid cross-check: %w", err)
		}
		if paranoidRep.Format() != astRep.Format() {
			return "", fmt.Errorf("experiments: variants: paranoid report diverges")
		}
		res.ParanoidChecked = true
	}

	if scale.BenchJSON != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return "", fmt.Errorf("experiments: variants: %w", err)
		}
		if err := os.WriteFile(scale.BenchJSON, append(data, '\n'), 0o644); err != nil {
			return "", fmt.Errorf("experiments: variants: %w", err)
		}
	}

	out := "Variant throughput: AST-resident instantiation vs render+reparse\n"
	out += fmt.Sprintf("  corpus: %d files, %d instantiated variants, %d campaign variants (workers=%d)\n",
		res.Files, res.InstVariants, res.CampaignVariants, res.Workers)
	out += fmt.Sprintf("  instantiation: render %8.0f variants/s | ast %8.0f variants/s | speedup %.1fx\n",
		res.InstRenderVPS, res.InstASTVPS, res.InstSpeedup)
	out += fmt.Sprintf("  full campaign: render %8.0f variants/s | ast %8.0f variants/s | speedup %.2fx\n",
		res.CampaignRenderVPS, res.CampaignASTVPS, res.CampaignSpeedup)
	out += fmt.Sprintf("  reports byte-identical: %v, paranoid cross-check: %v\n",
		res.ReportsIdentical, res.ParanoidChecked)
	return out, nil
}
