// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated substrate: Table 1 (enumeration size
// reduction), Table 2 (test-suite characteristics), Table 3 (crash
// signatures), Table 4 (bug report overview), Figure 8 (variant-count
// distributions), Figure 9 (coverage improvements vs mutation), and
// Figure 10 (bug characteristics). See DESIGN.md for the per-experiment
// index and EXPERIMENTS.md for recorded paper-vs-measured results.
package experiments

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"spe/internal/campaign"
	"spe/internal/cc"
	"spe/internal/corpus"
	"spe/internal/harness"
	"spe/internal/minicc"
	"spe/internal/report"
	"spe/internal/skeleton"
	"spe/internal/spe"
)

// Scale controls experiment sizes (number of corpus files, variants per
// file) so benchmarks and the CLI can trade time for fidelity.
type Scale struct {
	CorpusFiles       int // synthetic corpus size (default 150)
	MaxVariants       int // harness variants per file (default 200)
	CoverageFiles     int // files in the coverage experiment (default 25)
	CoverageVars      int // SPE variants per file for coverage (default 20)
	Seed              int64
	CampaignCorpus    int // synthetic files added to the bug campaign (default 30)
	ThresholdOverride int64
	// Workers sizes the campaign engine's worker pool (0 = GOMAXPROCS);
	// any value produces identical tables, parallelism only changes speed.
	Workers int
	// Checkpoint, when non-empty, makes campaigns periodically persist
	// their state to this path for campaign.Resume.
	Checkpoint string
	// Schedule selects the campaign shard dispatch policy ("" = fifo;
	// "coverage" steers dispatch by coverage novelty). Tables are
	// identical under either policy — only wall-clock shape changes.
	Schedule string
	// TargetShardMillis enables the campaign engine's adaptive shard
	// sizing (0 = fixed shards).
	TargetShardMillis int
	// Oracle selects the campaign reference engine ("" = bytecode, the
	// skeleton-compiled UB-checking bytecode VM; "tree" = the historical
	// tree-walking interpreter). Tables are identical under either.
	Oracle string
	// Dispatch selects the bytecode oracle's instruction dispatch engine
	// ("" = threaded, the fused and specialized handler table; "switch" =
	// the monolithic opcode switch baseline). Tables are identical under
	// either.
	Dispatch string
	// NoOracleBatch disables the campaign's batched shard execution (one
	// oracle VM checkout per shard); the baseline knob. Tables are
	// identical either way.
	NoOracleBatch bool
	// BackendDispatch selects the minicc VM's instruction dispatch engine
	// for the compiled binaries under test ("" = threaded, the fused
	// handler table; "switch" = the monolithic opcode switch baseline).
	// Tables are identical under either.
	BackendDispatch string
	// NoBackendBatch disables the campaign's batched per-config compiler
	// walk inside batched shards; the baseline knob. Tables are identical
	// either way.
	NoBackendBatch bool
	// Paranoid enables the campaign engine's per-variant render+reparse
	// cross-check of the AST-resident instantiation (campaign.Config.
	// Paranoid) and, under the bytecode oracle, the per-variant
	// tree-vs-bytecode verdict cross-check; tables are identical,
	// campaigns just pay the extra checks.
	Paranoid bool
	// ForceRenderPath routes campaigns through the historical
	// render→re-parse pipeline (the variants/sec baseline).
	ForceRenderPath bool
	// BenchJSON, when non-empty, makes VariantsBench write its result
	// there as JSON (the CI artifact BENCH_variants.json).
	BenchJSON string
	// Telemetry, when non-nil, attaches live campaign telemetry (the
	// cmd/spebench -status-addr/-progress flags) to every campaign the
	// experiments run. Purely observational: tables and bench reports are
	// byte-identical with or without it.
	Telemetry *campaign.Telemetry
}

func (s Scale) withDefaults() Scale {
	if s.CorpusFiles == 0 {
		s.CorpusFiles = 150
	}
	if s.MaxVariants == 0 {
		s.MaxVariants = 200
	}
	if s.CoverageFiles == 0 {
		s.CoverageFiles = 25
	}
	if s.CoverageVars == 0 {
		s.CoverageVars = 20
	}
	if s.Seed == 0 {
		s.Seed = 20170618
	}
	if s.CampaignCorpus == 0 {
		s.CampaignCorpus = 60
	}
	return s
}

// fileCounts carries the per-file enumeration counts.
type fileCounts struct {
	naive     *big.Int
	canonical *big.Int
	paper     *big.Int
	stats     skeleton.Stats
}

func corpusCounts(progs []string) ([]fileCounts, error) {
	out := make([]fileCounts, 0, len(progs))
	for i, src := range progs {
		f, err := cc.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("experiments: corpus[%d]: %w", i, err)
		}
		prog, err := cc.Analyze(f)
		if err != nil {
			return nil, fmt.Errorf("experiments: corpus[%d]: %w", i, err)
		}
		sk, err := skeleton.Build(prog)
		if err != nil {
			return nil, fmt.Errorf("experiments: corpus[%d]: %w", i, err)
		}
		out = append(out, fileCounts{
			naive:     spe.Count(sk, spe.Options{Mode: spe.ModeNaive}),
			canonical: spe.Count(sk, spe.Options{Mode: spe.ModeCanonical}),
			paper:     spe.Count(sk, spe.Options{Mode: spe.ModePaper}),
			stats:     sk.ComputeStats(),
		})
	}
	return out, nil
}

// Corpus assembles the experiment population: handwritten paper-figure
// seeds plus the calibrated synthetic corpus.
func Corpus(scale Scale) []string {
	scale = scale.withDefaults()
	progs := corpus.Seeds()
	progs = append(progs, corpus.Generate(corpus.Config{N: scale.CorpusFiles, Seed: scale.Seed})...)
	return progs
}

// Table1 reproduces the size-reduction table: total and average
// enumeration-set sizes for the naive and SPE approaches, over the full
// corpus and over the 10K-thresholded corpus.
func Table1(scale Scale) (string, error) {
	scale = scale.withDefaults()
	counts, err := corpusCounts(Corpus(scale))
	if err != nil {
		return "", err
	}
	threshold := big.NewInt(10_000)
	if scale.ThresholdOverride > 0 {
		threshold = big.NewInt(scale.ThresholdOverride)
	}

	sum := func(sel func(fileCounts) *big.Int, onlyBelow bool) (*big.Int, int) {
		total := new(big.Int)
		n := 0
		for _, c := range counts {
			if onlyBelow && c.canonical.Cmp(threshold) > 0 {
				continue
			}
			total.Add(total, sel(c))
			n++
		}
		return total, n
	}
	naiveAll, nAll := sum(func(c fileCounts) *big.Int { return c.naive }, false)
	ourAll, _ := sum(func(c fileCounts) *big.Int { return c.canonical }, false)
	naiveThr, nThr := sum(func(c fileCounts) *big.Int { return c.naive }, true)
	ourThr, _ := sum(func(c fileCounts) *big.Int { return c.canonical }, true)

	avg := func(total *big.Int, n int) string {
		if n == 0 {
			return "0"
		}
		return report.SciBig(new(big.Int).Quo(total, big.NewInt(int64(n))))
	}
	t := &report.Table{
		Title:  "Table 1: enumeration size reduction (naive vs SPE)",
		Header: []string{"Approach", "Total (all)", "Avg (all)", "#Files", "Total (<=10K)", "Avg (<=10K)", "#Files"},
	}
	t.AddRow("Naive", report.SciBig(naiveAll), avg(naiveAll, nAll), fmt.Sprint(nAll),
		report.SciBig(naiveThr), avg(naiveThr, nThr), fmt.Sprint(nThr))
	t.AddRow("Our", report.SciBig(ourAll), avg(ourAll, nAll), fmt.Sprint(nAll),
		report.SciBig(ourThr), avg(ourThr, nThr), fmt.Sprint(nThr))
	reduction := report.RatioOrders(naiveThr, ourThr)
	reductionAll := report.RatioOrders(naiveAll, ourAll)
	out := t.String()
	out += fmt.Sprintf("\nReduction: %d orders of magnitude on the full corpus, %d on the thresholded corpus\n",
		reductionAll, reduction)
	out += fmt.Sprintf("(paper: 94 orders full, 6 orders thresholded; retained %d/%d = %s of files)\n",
		nThr, nAll, report.Pct(float64(nThr)/float64(nAll)))
	return out, nil
}

// Table2 reproduces the test-suite characteristics table.
func Table2(scale Scale) (string, error) {
	scale = scale.withDefaults()
	counts, err := corpusCounts(Corpus(scale))
	if err != nil {
		return "", err
	}
	threshold := big.NewInt(10_000)
	row := func(name string, onlyBelow bool) []string {
		var holes, scopes, funcs, types, vars float64
		n := 0
		for _, c := range counts {
			if onlyBelow && c.canonical.Cmp(threshold) > 0 {
				continue
			}
			holes += float64(c.stats.Holes)
			scopes += float64(c.stats.Scopes)
			funcs += float64(c.stats.Funcs)
			types += float64(c.stats.Types)
			vars += c.stats.Vars
			n++
		}
		if n == 0 {
			n = 1
		}
		f := func(v float64) string { return fmt.Sprintf("%.2f", v/float64(n)) }
		return []string{name, f(holes), f(scopes), f(funcs), f(types), f(vars)}
	}
	t := &report.Table{
		Title:  "Table 2: corpus characteristics (averages per file; paper: 7.34/2.77/1.85/1.38/3.46 original)",
		Header: []string{"Corpus", "#Holes", "#Scopes", "#Funcs", "#Types", "#Vars/hole"},
	}
	t.AddRow(row("Original", false)...)
	t.AddRow(row("Enumerated (<=10K)", true)...)
	return t.String(), nil
}

// Figure8 reproduces the variant-count distribution figure: (a) the
// fraction of files whose enumeration set falls in each decade bucket,
// for naive and SPE; (b) the average eliminated fraction per bucket.
func Figure8(scale Scale) (string, error) {
	scale = scale.withDefaults()
	counts, err := corpusCounts(Corpus(scale))
	if err != nil {
		return "", err
	}
	const maxBucket = 10
	var naiveVals, ourVals []*big.Int
	for _, c := range counts {
		naiveVals = append(naiveVals, c.naive)
		ourVals = append(ourVals, c.canonical)
	}
	labels, naiveBuckets := report.BucketCounts(naiveVals, maxBucket)
	_, ourBuckets := report.BucketCounts(ourVals, maxBucket)
	n := float64(len(counts))
	t := &report.Table{
		Title:  "Figure 8(a): distribution of per-file variant counts",
		Header: []string{"Bucket", "Naive", "Our"},
	}
	for i, l := range labels {
		t.AddRow(l, report.Pct(float64(naiveBuckets[i])/n), report.Pct(float64(ourBuckets[i])/n))
	}
	out := t.String()

	// (b): average eliminated ratio 1 - our/naive per naive bucket
	elim := make([]float64, maxBucket+1)
	cnt := make([]int, maxBucket+1)
	for _, c := range counts {
		d := len(c.naive.String()) - 1
		if d > maxBucket {
			d = maxBucket
		}
		nf, _ := new(big.Float).SetInt(c.naive).Float64()
		of, _ := new(big.Float).SetInt(c.canonical).Float64()
		if nf > 0 {
			elim[d] += 1 - of/nf
			cnt[d]++
		}
	}
	h := &report.Histogram{Title: "Figure 8(b): average eliminated fraction per bucket", Unit: ""}
	for i, l := range labels {
		if cnt[i] == 0 {
			continue
		}
		h.Labels = append(h.Labels, l)
		h.Values = append(h.Values, elim[i]/float64(cnt[i]))
	}
	return out + "\n" + h.String(), nil
}

// Campaign runs the bug-hunting campaign used by Tables 3 and 4 and
// Figure 10.
func Campaign(scale Scale, versions []string) (*harness.Report, error) {
	scale = scale.withDefaults()
	progs := corpus.Seeds()
	progs = append(progs, corpus.Generate(corpus.Config{N: scale.CampaignCorpus, Seed: scale.Seed + 1})...)
	// the campaign is budgeted per file by MaxVariants rather than by the
	// paper's 10K skip-threshold (which models their fixed compute budget;
	// our cap achieves the same bound while still sampling large files)
	return harness.Run(harness.Config{
		Corpus:             progs,
		Versions:           versions,
		Threshold:          -1,
		MaxVariantsPerFile: scale.MaxVariants,
		Workers:            scale.Workers,
		CheckpointPath:     scale.Checkpoint,
		Schedule:           scale.Schedule,
		TargetShardMillis:  scale.TargetShardMillis,
		Oracle:             scale.Oracle,
		Dispatch:           scale.Dispatch,
		NoOracleBatch:      scale.NoOracleBatch,
		BackendDispatch:    scale.BackendDispatch,
		NoBackendBatch:     scale.NoBackendBatch,
		Paranoid:           scale.Paranoid,
		ForceRenderPath:    scale.ForceRenderPath,
		Telemetry:          scale.Telemetry,
	})
}

// Table3 reproduces the crash-signature table from a stable-release
// campaign (the paper tests GCC-4.8.5 and Clang-3.6 with the GCC-4.8.5
// suite; we test the two oldest simulated releases).
func Table3(scale Scale) (string, error) {
	rep, err := Campaign(scale, []string{"4.8", "5.3"})
	if err != nil {
		return "", err
	}
	t := &report.Table{
		Title:  "Table 3: crash signatures found on stable releases",
		Header: []string{"Signature", "Bug", "Opt levels"},
	}
	for _, fd := range rep.Findings {
		if fd.Kind != minicc.BugCrash {
			continue
		}
		t.AddRow(fd.Signature, fd.BugID, intsStr(fd.OptLevels))
	}
	out := t.String()
	out += fmt.Sprintf("\n%d crash, %d wrong-code, %d performance findings; %d variants tested (%d UB-filtered)\n",
		rep.Stats.CrashFindings, rep.Stats.WrongFindings, rep.Stats.PerfFindings,
		rep.Stats.Variants, rep.Stats.VariantsUB)
	return out, nil
}

// Table4 reproduces the bug-overview table from a trunk campaign.
func Table4(scale Scale) (string, *harness.Report, error) {
	rep, err := Campaign(scale, []string{"trunk"})
	if err != nil {
		return "", nil, err
	}
	var crash, wrong, perf, fixedLater int
	for _, fd := range rep.Findings {
		switch fd.Kind {
		case minicc.BugCrash:
			crash++
		case minicc.BugWrongCode:
			wrong++
		default:
			perf++
		}
		if b, ok := minicc.BugByID(fd.BugID); ok && b.FixedIn >= 0 {
			fixedLater++
		}
	}
	t := &report.Table{
		Title:  "Table 4: trunk campaign bug overview (paper: 217 reported, 119 fixed; crash >> wrong code > perf)",
		Header: []string{"Compiler", "Reported", "Crash", "Wrong code", "Performance"},
	}
	t.AddRow("minicc-trunk", fmt.Sprint(len(rep.Findings)), fmt.Sprint(crash), fmt.Sprint(wrong), fmt.Sprint(perf))
	out := t.String()
	out += fmt.Sprintf("\nExecutions: %d; clean variants: %d; UB variants filtered: %d\n",
		rep.Stats.Executions, rep.Stats.VariantsClean, rep.Stats.VariantsUB)
	return out, rep, nil
}

// Figure10 renders bug-characteristic histograms from a campaign across
// all simulated versions (priorities, optimization levels, affected
// versions, components — the paper's Figure 10a-d).
func Figure10(scale Scale) (string, error) {
	rep, err := Campaign(scale, minicc.Versions)
	if err != nil {
		return "", err
	}
	prio := map[int]int{}
	opts := map[int]int{}
	vers := map[string]int{}
	comp := map[string]int{}
	for _, fd := range rep.Findings {
		if fd.Priority > 0 {
			prio[fd.Priority]++
		}
		for _, o := range fd.OptLevels {
			opts[o]++
		}
		for _, v := range fd.Versions {
			vers[v]++
		}
		if fd.Component != "" {
			comp[fd.Component]++
		}
	}
	var sb strings.Builder
	h1 := &report.Histogram{Title: "Figure 10(a): bug priorities"}
	for p := 1; p <= 5; p++ {
		if prio[p] == 0 {
			continue
		}
		h1.Labels = append(h1.Labels, fmt.Sprintf("P%d", p))
		h1.Values = append(h1.Values, float64(prio[p]))
	}
	sb.WriteString(h1.String() + "\n")
	h2 := &report.Histogram{Title: "Figure 10(b): affected optimization levels"}
	for o := 0; o <= 3; o++ {
		h2.Labels = append(h2.Labels, fmt.Sprintf("-O%d", o))
		h2.Values = append(h2.Values, float64(opts[o]))
	}
	sb.WriteString(h2.String() + "\n")
	h3 := &report.Histogram{Title: "Figure 10(c): affected versions"}
	for _, v := range minicc.Versions {
		h3.Labels = append(h3.Labels, v)
		h3.Values = append(h3.Values, float64(vers[v]))
	}
	sb.WriteString(h3.String() + "\n")
	h4 := &report.Histogram{Title: "Figure 10(d): affected components"}
	var comps []string
	for c := range comp {
		comps = append(comps, c)
	}
	sort.Strings(comps)
	for _, c := range comps {
		h4.Labels = append(h4.Labels, c)
		h4.Values = append(h4.Values, float64(comp[c]))
	}
	sb.WriteString(h4.String())
	return sb.String(), nil
}

// Figure9 reproduces the coverage-improvement comparison (SPE vs Orion
// statement deletion).
func Figure9(scale Scale) (string, error) {
	scale = scale.withDefaults()
	progs := Corpus(scale)
	if len(progs) > scale.CoverageFiles {
		progs = progs[:scale.CoverageFiles]
	}
	rep, err := harness.CoverageExperiment(harness.CoverageConfig{
		Corpus:          progs,
		VariantsPerFile: scale.CoverageVars,
		PMLevels:        []int{10, 20, 30},
		PMVariants:      scale.CoverageVars,
		Seed:            scale.Seed,
	})
	if err != nil {
		return "", err
	}
	t := &report.Table{
		Title:  "Figure 9: compiler coverage improvements over the baseline corpus (percentage points)",
		Header: []string{"Strategy", "Function", "Line"},
	}
	spe9 := rep.SPE.Improvement(rep.Baseline)
	t.AddRow("SPE", fmt.Sprintf("%.2f", spe9.Function), fmt.Sprintf("%.2f", spe9.Line))
	for _, x := range []int{10, 20, 30} {
		pm := rep.PM[x].Improvement(rep.Baseline)
		t.AddRow(fmt.Sprintf("PM-%d", x), fmt.Sprintf("%.2f", pm.Function), fmt.Sprintf("%.2f", pm.Line))
	}
	out := t.String()
	out += fmt.Sprintf("\nBaseline coverage: function %s, line %s (paper baseline: 41%%/32%% for GCC)\n",
		report.Pct(rep.Baseline.Function), report.Pct(rep.Baseline.Line))
	return out, nil
}

func intsStr(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("-O%d", x)
	}
	return strings.Join(parts, " ")
}

// Example6 renders the paper's Example 6 arithmetic alongside the exact
// orbit counts (DESIGN.md §2).
func Example6() string {
	cfg := &spe.TwoLevelConfig{GlobalHoles: 3, GlobalVars: 2, ScopeHoles: []int{2}, ScopeVars: []int{2}}
	t := &report.Table{
		Title:  "Example 6 (Figure 7): 3 global holes over {a,b}, 2 scope holes over {a,b,c,d}",
		Header: []string{"Quantity", "Value"},
	}
	t.AddRow("Naive count (2^3 * 4^2)", cfg.NaiveCount().String())
	t.AddRow("Paper PartitionScope count", cfg.PaperCount().String())
	t.AddRow("Exact compact-alpha orbits", cfg.CanonicalProblem().CanonicalCount().String())
	t.AddRow("Burnside verification", cfg.CanonicalProblem().OrbitCountBurnside().String())
	return t.String()
}
