package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"spe/internal/corpus"
	"spe/internal/harness"
)

// OracleBenchResult is the machine-readable outcome of the oracle
// benchmark (emitted as BENCH_oracle.json by cmd/spebench). Where the
// backend experiment measured pooled-vs-cold execution state (PR 4), this
// one measures the reference oracle itself along three axes: the
// tree-walking UB-checking interpreter versus the skeleton-compiled
// bytecode VM, the bytecode VM's threaded (fused, specialized handler
// table) dispatch versus the monolithic opcode switch, and batched shard
// execution versus a per-variant VM checkout.
type OracleBenchResult struct {
	Workers int `json:"workers"`
	Files   int `json:"files"`
	// full differential campaign throughput along the oracle axes; the
	// bytecode figure is the default engine (threaded dispatch, batching)
	CampaignVariants int     `json:"campaign_variants"`
	TreeVPS          float64 `json:"campaign_tree_variants_per_sec"`
	BytecodeVPS      float64 `json:"campaign_bytecode_variants_per_sec"`
	Speedup          float64 `json:"campaign_bytecode_speedup"`
	// baselines: switch dispatch (batching on) and batching off (threaded)
	SwitchVPS       float64 `json:"campaign_switch_dispatch_variants_per_sec"`
	NoBatchVPS      float64 `json:"campaign_nobatch_variants_per_sec"`
	ThreadedSpeedup float64 `json:"campaign_threaded_dispatch_speedup"`
	BatchSpeedup    float64 `json:"campaign_batch_speedup"`
	// ReportsIdentical confirms every engine/dispatch/batching combination
	// produced byte-identical reports; ParanoidChecked additionally
	// confirms a bytecode campaign passed the per-variant tree-vs-bytecode
	// verdict cross-check.
	ReportsIdentical bool `json:"reports_identical"`
	ParanoidChecked  bool `json:"paranoid_checked"`
}

// OracleBench measures full-campaign variants/sec with the tree-walking
// and bytecode reference oracles — the latter under both dispatch engines
// and with batching on and off — and cross-checks report equivalence
// across every combination. When scale.BenchJSON is set the result is
// also written there as JSON.
func OracleBench(scale Scale) (string, error) {
	scale = scale.withDefaults()
	progs := corpus.Seeds()
	progs = append(progs, corpus.Generate(corpus.Config{N: scale.CampaignCorpus, Seed: scale.Seed + 3})...)
	res := &OracleBenchResult{Workers: scale.Workers, Files: len(progs)}

	campaign := func(oracle, dispatch string, noBatch, paranoid bool) (*harness.Report, float64, error) {
		cfg := harness.Config{
			Corpus:             progs,
			Versions:           []string{"trunk"},
			Threshold:          -1,
			MaxVariantsPerFile: scale.MaxVariants,
			Workers:            scale.Workers,
			Oracle:             oracle,
			Dispatch:           dispatch,
			NoOracleBatch:      noBatch,
			Paranoid:           paranoid,
			Telemetry:          scale.Telemetry,
		}
		start := time.Now()
		rep, err := harness.Run(cfg)
		return rep, time.Since(start).Seconds(), err
	}

	treeRep, treeSec, err := campaign("tree", "", false, false)
	if err != nil {
		return "", fmt.Errorf("experiments: oracle: tree campaign: %w", err)
	}
	bcRep, bcSec, err := campaign("bytecode", "", false, false)
	if err != nil {
		return "", fmt.Errorf("experiments: oracle: bytecode campaign: %w", err)
	}
	switchRep, switchSec, err := campaign("bytecode", "switch", false, false)
	if err != nil {
		return "", fmt.Errorf("experiments: oracle: switch-dispatch campaign: %w", err)
	}
	noBatchRep, noBatchSec, err := campaign("bytecode", "", true, false)
	if err != nil {
		return "", fmt.Errorf("experiments: oracle: no-batch campaign: %w", err)
	}
	res.CampaignVariants = bcRep.Stats.Variants
	res.TreeVPS = float64(treeRep.Stats.Variants) / treeSec
	res.BytecodeVPS = float64(bcRep.Stats.Variants) / bcSec
	res.SwitchVPS = float64(switchRep.Stats.Variants) / switchSec
	res.NoBatchVPS = float64(noBatchRep.Stats.Variants) / noBatchSec
	res.Speedup = res.BytecodeVPS / res.TreeVPS
	res.ThreadedSpeedup = res.BytecodeVPS / res.SwitchVPS
	res.BatchSpeedup = res.BytecodeVPS / res.NoBatchVPS
	base := bcRep.Format()
	res.ReportsIdentical = treeRep.Format() == base &&
		switchRep.Format() == base && noBatchRep.Format() == base
	if !res.ReportsIdentical {
		return "", fmt.Errorf("experiments: oracle: report diverges across oracle/dispatch/batch modes")
	}
	if scale.Paranoid {
		paranoidRep, _, err := campaign("bytecode", "", false, true)
		if err != nil {
			return "", fmt.Errorf("experiments: oracle: paranoid cross-check: %w", err)
		}
		if paranoidRep.Format() != base {
			return "", fmt.Errorf("experiments: oracle: paranoid report diverges")
		}
		res.ParanoidChecked = true
	}

	if scale.BenchJSON != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return "", fmt.Errorf("experiments: oracle: %w", err)
		}
		if err := os.WriteFile(scale.BenchJSON, append(data, '\n'), 0o644); err != nil {
			return "", fmt.Errorf("experiments: oracle: %w", err)
		}
	}

	out := "Oracle throughput: skeleton-compiled bytecode reference VM vs tree-walking interpreter\n"
	out += fmt.Sprintf("  corpus: %d files, %d campaign variants (workers=%d)\n",
		res.Files, res.CampaignVariants, res.Workers)
	out += fmt.Sprintf("  full campaign: tree %8.0f variants/s | bytecode %8.0f variants/s | speedup %.2fx\n",
		res.TreeVPS, res.BytecodeVPS, res.Speedup)
	out += fmt.Sprintf("  dispatch: switch %8.0f variants/s | threaded speedup %.2fx\n",
		res.SwitchVPS, res.ThreadedSpeedup)
	out += fmt.Sprintf("  batching: off    %8.0f variants/s | batch speedup    %.2fx\n",
		res.NoBatchVPS, res.BatchSpeedup)
	out += fmt.Sprintf("  reports byte-identical: %v, paranoid cross-check: %v\n",
		res.ReportsIdentical, res.ParanoidChecked)
	return out, nil
}
