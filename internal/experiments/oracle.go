package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"spe/internal/corpus"
	"spe/internal/harness"
)

// OracleBenchResult is the machine-readable outcome of the oracle
// benchmark (emitted as BENCH_oracle.json by cmd/spebench). Where the
// backend experiment measured pooled-vs-cold execution state (PR 4), this
// one measures what PR 5 targets: the reference oracle itself — the
// tree-walking UB-checking interpreter versus the skeleton-compiled
// bytecode VM that patches hole-fed sites per variant.
type OracleBenchResult struct {
	Workers int `json:"workers"`
	Files   int `json:"files"`
	// full differential campaign throughput, tree vs bytecode oracle
	CampaignVariants int     `json:"campaign_variants"`
	TreeVPS          float64 `json:"campaign_tree_variants_per_sec"`
	BytecodeVPS      float64 `json:"campaign_bytecode_variants_per_sec"`
	Speedup          float64 `json:"campaign_bytecode_speedup"`
	// ReportsIdentical confirms the two oracles produced byte-identical
	// reports; ParanoidChecked additionally confirms a bytecode campaign
	// passed the per-variant tree-vs-bytecode verdict cross-check.
	ReportsIdentical bool `json:"reports_identical"`
	ParanoidChecked  bool `json:"paranoid_checked"`
}

// OracleBench measures full-campaign variants/sec with the tree-walking
// and bytecode reference oracles and cross-checks report equivalence.
// When scale.BenchJSON is set the result is also written there as JSON.
func OracleBench(scale Scale) (string, error) {
	scale = scale.withDefaults()
	progs := corpus.Seeds()
	progs = append(progs, corpus.Generate(corpus.Config{N: scale.CampaignCorpus, Seed: scale.Seed + 3})...)
	res := &OracleBenchResult{Workers: scale.Workers, Files: len(progs)}

	campaign := func(oracle string, paranoid bool) (*harness.Report, float64, error) {
		cfg := harness.Config{
			Corpus:             progs,
			Versions:           []string{"trunk"},
			Threshold:          -1,
			MaxVariantsPerFile: scale.MaxVariants,
			Workers:            scale.Workers,
			Oracle:             oracle,
			Paranoid:           paranoid,
			Telemetry:          scale.Telemetry,
		}
		start := time.Now()
		rep, err := harness.Run(cfg)
		return rep, time.Since(start).Seconds(), err
	}

	treeRep, treeSec, err := campaign("tree", false)
	if err != nil {
		return "", fmt.Errorf("experiments: oracle: tree campaign: %w", err)
	}
	bcRep, bcSec, err := campaign("bytecode", false)
	if err != nil {
		return "", fmt.Errorf("experiments: oracle: bytecode campaign: %w", err)
	}
	res.CampaignVariants = bcRep.Stats.Variants
	res.TreeVPS = float64(treeRep.Stats.Variants) / treeSec
	res.BytecodeVPS = float64(bcRep.Stats.Variants) / bcSec
	res.Speedup = res.BytecodeVPS / res.TreeVPS
	res.ReportsIdentical = treeRep.Format() == bcRep.Format()
	if !res.ReportsIdentical {
		return "", fmt.Errorf("experiments: oracle: bytecode report diverges from tree baseline")
	}
	if scale.Paranoid {
		paranoidRep, _, err := campaign("bytecode", true)
		if err != nil {
			return "", fmt.Errorf("experiments: oracle: paranoid cross-check: %w", err)
		}
		if paranoidRep.Format() != bcRep.Format() {
			return "", fmt.Errorf("experiments: oracle: paranoid report diverges")
		}
		res.ParanoidChecked = true
	}

	if scale.BenchJSON != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return "", fmt.Errorf("experiments: oracle: %w", err)
		}
		if err := os.WriteFile(scale.BenchJSON, append(data, '\n'), 0o644); err != nil {
			return "", fmt.Errorf("experiments: oracle: %w", err)
		}
	}

	out := "Oracle throughput: skeleton-compiled bytecode reference VM vs tree-walking interpreter\n"
	out += fmt.Sprintf("  corpus: %d files, %d campaign variants (workers=%d)\n",
		res.Files, res.CampaignVariants, res.Workers)
	out += fmt.Sprintf("  full campaign: tree %8.0f variants/s | bytecode %8.0f variants/s | speedup %.2fx\n",
		res.TreeVPS, res.BytecodeVPS, res.Speedup)
	out += fmt.Sprintf("  reports byte-identical: %v, paranoid cross-check: %v\n",
		res.ReportsIdentical, res.ParanoidChecked)
	return out, nil
}
