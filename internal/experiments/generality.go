package experiments

import (
	"fmt"

	"spe/internal/cc"
	"spe/internal/ccomp"
	"spe/internal/report"
	"spe/internal/skeleton"
	"spe/internal/spe"
)

// Generality reproduces the paper's §5.3 generality claim — SPE applied to
// a verified-backend compiler (CompCert's role) finds frontend crashes and
// only frontend crashes — by hunting over enumerated variants of the
// corpus with the ccomp elaborator.
func Generality(scale Scale) (string, error) {
	scale = scale.withDefaults()
	progs := Corpus(scale)
	if len(progs) > 40 {
		progs = progs[:40]
	}
	var variants []string
	for _, src := range progs {
		f, err := cc.Parse(src)
		if err != nil {
			return "", err
		}
		prog, err := cc.Analyze(f)
		if err != nil {
			return "", err
		}
		sk, err := skeleton.Build(prog)
		if err != nil {
			return "", err
		}
		n := 0
		_, err = spe.Enumerate(sk, spe.Options{Mode: spe.ModeCanonical}, func(v spe.Variant) bool {
			variants = append(variants, v.Source)
			n++
			return n < scale.MaxVariants/2
		})
		if err != nil {
			return "", err
		}
	}
	findings, err := ccomp.Hunt(variants, false)
	if err != nil {
		return "", err
	}
	fixedFindings, err := ccomp.Hunt(variants, true)
	if err != nil {
		return "", err
	}
	t := &report.Table{
		Title:  "Generality (§5.3): ccomp (verified-backend compiler) crash findings",
		Header: []string{"Bug", "Signature", "Fixed upstream"},
	}
	fixedSet := map[string]bool{}
	for _, b := range ccomp.Registry() {
		if b.Fixed {
			fixedSet[b.ID] = true
		}
	}
	for _, f := range findings {
		fixed := "no"
		if fixedSet[f.BugID] {
			fixed = "yes"
		}
		t.AddRow(f.BugID, f.Signature, fixed)
	}
	out := t.String()
	out += fmt.Sprintf("\n%d crash bugs over %d variants (%d still present after upstream fixes);\n"+
		"all findings are frontend crashes — wrong code is impossible by the verified-backend construction\n"+
		"(paper: 29 CompCert crashing bugs, 25 fixed, all frontend)\n",
		len(findings), len(variants), len(fixedFindings))
	return out, nil
}
