package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"spe/internal/campaign"
	"spe/internal/corpus"
	"spe/internal/fabric"
	"spe/internal/obs"
)

// FabricBenchResult is the machine-readable outcome of the distributed
// fabric benchmark (emitted as BENCH_fabric.json by cmd/spebench). It
// pins the fabric's two contracts on a real campaign: the loopback
// coordinator/worker report is byte-identical to the in-process engine's,
// and the lease/HTTP/JSON overhead of distributing shards stays small
// (the protocol costs once per shard, not per variant).
type FabricBenchResult struct {
	Workers int `json:"workers"`
	// FleetSize is how many worker processes' worth of lease loops the
	// loopback fabric ran (each with Workers/FleetSize parallel slots).
	FleetSize int `json:"fleet_size"`
	Files     int `json:"files"`
	// Rounds is how many alternating in-process/fabric pairs ran; each
	// side's VPS is the best over its rounds.
	Rounds           int     `json:"rounds"`
	CampaignVariants int     `json:"campaign_variants"`
	InProcessVPS     float64 `json:"inprocess_variants_per_sec"`
	FabricVPS        float64 `json:"fabric_loopback_variants_per_sec"`
	// OverheadPercent is (inprocess-fabric)/inprocess*100; negative means
	// the fabric round happened to be faster (noise).
	OverheadPercent float64 `json:"fabric_overhead_percent"`
	// LeaseRPCs counts the lease round trips the fleet made in the last
	// fabric round, and GrantsPerLeaseRPC how many shard tasks the average
	// successful lease call carried — above 1.0 means batched lease grants
	// (LeaseRequest.Max) are coalescing round trips.
	LeaseRPCs         int64   `json:"lease_rpcs"`
	GrantsPerLeaseRPC float64 `json:"grants_per_lease_rpc"`
	// ReportsIdentical confirms the loopback fabric campaign produced a
	// byte-identical report to the in-process engine.
	ReportsIdentical bool `json:"reports_identical"`
}

// fabricBenchRounds alternates in-process/fabric pairs to keep slow
// drift from biasing one side.
const fabricBenchRounds = 3

// fabricFleetSize is how many workers the loopback fabric joins.
const fabricFleetSize = 2

// FabricBench measures full-campaign variants/sec through the in-process
// engine versus a loopback HTTP fabric (a real TCP listener, JSON
// marshalling, two joined workers splitting the shard parallelism) and
// cross-checks that the reports are byte-identical. When scale.BenchJSON
// is set the result is also written there as JSON.
func FabricBench(scale Scale) (string, error) {
	scale = scale.withDefaults()
	progs := corpus.Seeds()
	progs = append(progs, corpus.Generate(corpus.Config{N: scale.CampaignCorpus, Seed: scale.Seed + 5})...)
	res := &FabricBenchResult{Workers: scale.Workers, FleetSize: fabricFleetSize, Files: len(progs), Rounds: fabricBenchRounds}

	cfg := campaign.Config{
		Corpus:             progs,
		Versions:           []string{"trunk"},
		Threshold:          -1,
		MaxVariantsPerFile: scale.MaxVariants,
		Workers:            scale.Workers,
		Telemetry:          scale.Telemetry,
	}
	if cfg.Workers <= 0 {
		// floor the parallelism so each fleet worker runs several slots and
		// batched lease grants have round trips to coalesce even on small
		// CI machines; the in-process side uses the same value, keeping the
		// comparison fair
		cfg.Workers = 4 * fabricFleetSize
	}
	res.Workers = cfg.Workers

	var inProcReport, fabricReport string
	for round := 0; round < fabricBenchRounds; round++ {
		start := time.Now()
		rep, err := campaign.Run(cfg)
		if err != nil {
			return "", fmt.Errorf("experiments: fabric: in-process campaign: %w", err)
		}
		if vps := float64(rep.Stats.Variants) / time.Since(start).Seconds(); vps > res.InProcessVPS {
			res.InProcessVPS = vps
		}
		inProcReport = rep.Format()
		res.CampaignVariants = rep.Stats.Variants

		rep, vps, rpcs, grants, err := fabricCampaign(cfg)
		if err != nil {
			return "", err
		}
		if vps > res.FabricVPS {
			res.FabricVPS = vps
		}
		res.LeaseRPCs = rpcs
		if rpcs > 0 {
			res.GrantsPerLeaseRPC = float64(grants) / float64(rpcs)
		}
		fabricReport = rep.Format()
	}
	res.OverheadPercent = (res.InProcessVPS - res.FabricVPS) / res.InProcessVPS * 100
	res.ReportsIdentical = inProcReport == fabricReport
	if !res.ReportsIdentical {
		return "", fmt.Errorf("experiments: fabric: loopback fabric report diverges from the in-process report")
	}

	if scale.BenchJSON != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return "", fmt.Errorf("experiments: fabric: %w", err)
		}
		if err := os.WriteFile(scale.BenchJSON, append(data, '\n'), 0o644); err != nil {
			return "", fmt.Errorf("experiments: fabric: %w", err)
		}
	}

	out := "Distributed fabric: loopback HTTP coordinator/worker campaign vs in-process engine\n"
	out += fmt.Sprintf("  corpus: %d files, %d campaign variants (workers=%d, fleet=%d, rounds=%d)\n",
		res.Files, res.CampaignVariants, res.Workers, res.FleetSize, res.Rounds)
	out += fmt.Sprintf("  full campaign: in-process %8.0f variants/s | fabric %8.0f variants/s | overhead %+.2f%%\n",
		res.InProcessVPS, res.FabricVPS, res.OverheadPercent)
	out += fmt.Sprintf("  lease batching: %d lease round trips, %.2f grants per successful lease\n",
		res.LeaseRPCs, res.GrantsPerLeaseRPC)
	out += fmt.Sprintf("  reports byte-identical: %v\n", res.ReportsIdentical)
	return out, nil
}

// countingTransport wraps a Transport and tallies lease round trips and
// the shard grants they carried.
type countingTransport struct {
	fabric.Transport
	rpcs   atomic.Int64
	grants atomic.Int64
}

func (t *countingTransport) Lease(ctx context.Context, req *fabric.LeaseRequest) (*fabric.LeaseResponse, error) {
	t.rpcs.Add(1)
	resp, err := t.Transport.Lease(ctx, req)
	if err == nil && resp.Status == fabric.StatusTask {
		n := len(resp.Grants)
		if n == 0 {
			n = 1
		}
		t.grants.Add(int64(n))
	}
	return resp, err
}

// fabricCampaign runs one loopback fabric round: a coordinator behind a
// real HTTP listener, fabricFleetSize workers dialing it over TCP, the
// campaign's shard parallelism split across the fleet.
func fabricCampaign(cfg campaign.Config) (*campaign.Report, float64, int64, int64, error) {
	core, err := campaign.NewRemoteEngine(cfg)
	if err != nil {
		return nil, 0, 0, 0, fmt.Errorf("experiments: fabric: %w", err)
	}
	coord := fabric.NewCoordinator(core, fabric.Options{LeaseTimeout: time.Minute})
	srv, err := obs.Serve("127.0.0.1:0", coord.Handler())
	if err != nil {
		return nil, 0, 0, 0, fmt.Errorf("experiments: fabric: %w", err)
	}
	defer srv.Close()

	slots := cfg.Workers
	if slots <= 0 {
		slots = runtime.GOMAXPROCS(0)
	}
	perWorker := slots / fabricFleetSize
	if perWorker < 1 {
		perWorker = 1
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	start := time.Now()
	var wg sync.WaitGroup
	workerErrs := make([]error, fabricFleetSize)
	transports := make([]*countingTransport, fabricFleetSize)
	for i := 0; i < fabricFleetSize; i++ {
		transports[i] = &countingTransport{Transport: fabric.Dial(srv.Addr)}
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			w := &fabric.Worker{
				Transport:   transports[slot],
				ID:          fmt.Sprintf("bench-%d", slot),
				Parallelism: perWorker,
			}
			workerErrs[slot] = w.Run(ctx)
		}(i)
	}
	rep, waitErr := coord.Wait(ctx)
	cancel()
	wg.Wait()
	if waitErr != nil {
		return nil, 0, 0, 0, fmt.Errorf("experiments: fabric: coordinator: %w", waitErr)
	}
	elapsed := time.Since(start).Seconds()
	var rpcs, grants int64
	for i, err := range workerErrs {
		// cancellation after Wait returned is the normal fleet teardown
		if err != nil && !errors.Is(err, context.Canceled) {
			return nil, 0, 0, 0, fmt.Errorf("experiments: fabric: worker %d: %w", i, err)
		}
		rpcs += transports[i].rpcs.Load()
		grants += transports[i].grants.Load()
	}
	return rep, float64(rep.Stats.Variants) / elapsed, rpcs, grants, nil
}
