package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"spe/internal/campaign"
	"spe/internal/corpus"
)

// ScheduleBenchResult is the machine-readable outcome of the region
// scheduler benchmark (emitted as BENCH_schedule.json by cmd/spebench).
// It runs one campaign over the large multi-function corpus file
// (corpus.RegionsSeed / examples/regions/large.c) under each dispatch
// policy and records how many tested variants each needed to reach the
// campaign's full final site coverage. On a single file the coverage
// policy degenerates to fifo (it scores whole files), so the interesting
// delta is region vs coverage: region cuts the file's walk into
// hole-group ranges and steers between them.
type ScheduleBenchResult struct {
	Files      int `json:"files"`
	Variants   int `json:"campaign_variants"`
	Regions    int `json:"regions"`
	FinalSites int `json:"final_sites"`
	// VariantsToFull per schedule: tested variants merged when the
	// coverage frontier first reached its final size (lower is better).
	FIFOVariantsToFull     int `json:"fifo_variants_to_full_coverage"`
	CoverageVariantsToFull int `json:"coverage_variants_to_full_coverage"`
	RegionVariantsToFull   int `json:"region_variants_to_full_coverage"`
	// SpeedupVsCoverage is coverage/region variants-to-full-coverage —
	// how many times fewer variants the region scheduler needed.
	SpeedupVsCoverage float64 `json:"region_speedup_vs_coverage_x"`
	// RegionVPS is the region-schedule campaign's throughput (the
	// benchgate-watched metric; the steering win itself is a ratio and
	// machine-independent).
	RegionVPS float64 `json:"region_variants_per_sec"`
	// ReportsIdentical confirms all three schedules produced byte-identical
	// final reports (dispatch order is advisory; the merge is canonical).
	ReportsIdentical bool `json:"reports_identical"`
}

// scheduleBenchBudget is the per-file variant budget of the schedule
// benchmark: large enough that the strided walk crosses every region cut
// of the corpus file, small enough to run in CI.
const scheduleBenchBudget = 600

// ScheduleBench measures variants-to-full-coverage under the fifo,
// coverage, and region dispatch policies on the large multi-function
// corpus file, pinning byte-identical reports across all three. When
// scale.BenchJSON is set the result is also written there as JSON.
func ScheduleBench(scale Scale) (string, error) {
	scale = scale.withDefaults()
	res := &ScheduleBenchResult{Files: 1}

	cfg := campaign.Config{
		Corpus:             []string{corpus.RegionsSeed()},
		Versions:           []string{"trunk"},
		Threshold:          -1,
		MaxVariantsPerFile: scheduleBenchBudget,
		// one worker and a whole-campaign lookahead make the dispatch
		// order — and with it the coverage curve — deterministic
		Workers:       1,
		ShardSize:     4,
		Lookahead:     1 << 12,
		CoverageCurve: true,
		Telemetry:     scale.Telemetry,
	}

	type outcome struct {
		rep  *campaign.Report
		n    int
		vps  float64
		name string
	}
	var runs []outcome
	for _, schedule := range []string{campaign.ScheduleFIFO, campaign.ScheduleCoverage, campaign.ScheduleRegion} {
		c := cfg
		c.Schedule = schedule
		start := time.Now()
		rep, err := campaign.Run(c)
		if err != nil {
			return "", fmt.Errorf("experiments: schedule: %s campaign: %w", schedule, err)
		}
		vps := float64(rep.Stats.Variants) / time.Since(start).Seconds()
		runs = append(runs, outcome{rep: rep, n: rep.VariantsToSites(rep.FinalSites()), vps: vps, name: schedule})
	}

	fifo, cov, region := runs[0], runs[1], runs[2]
	res.Variants = region.rep.Stats.Variants
	res.FinalSites = region.rep.FinalSites()
	res.FIFOVariantsToFull = fifo.n
	res.CoverageVariantsToFull = cov.n
	res.RegionVariantsToFull = region.n
	res.RegionVPS = region.vps
	if region.n > 0 {
		res.SpeedupVsCoverage = float64(cov.n) / float64(region.n)
	}
	for _, p := range region.rep.Plans {
		if !p.Skipped {
			res.Regions = p.Regions
		}
	}

	res.ReportsIdentical = fifo.rep.Format() == cov.rep.Format() && cov.rep.Format() == region.rep.Format()
	if !res.ReportsIdentical {
		return "", fmt.Errorf("experiments: schedule: reports diverge across dispatch policies")
	}

	if scale.BenchJSON != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return "", fmt.Errorf("experiments: schedule: %w", err)
		}
		if err := os.WriteFile(scale.BenchJSON, append(data, '\n'), 0o644); err != nil {
			return "", fmt.Errorf("experiments: schedule: %w", err)
		}
	}

	out := "Region scheduler: variants to full coverage on the large multi-function corpus file\n"
	out += fmt.Sprintf("  corpus: examples/regions/large.c, %d variants tested, %d regions, %d final sites\n",
		res.Variants, res.Regions, res.FinalSites)
	out += fmt.Sprintf("  variants to full coverage: fifo %d | coverage %d | region %d (%.2fx fewer than coverage)\n",
		res.FIFOVariantsToFull, res.CoverageVariantsToFull, res.RegionVariantsToFull, res.SpeedupVsCoverage)
	out += fmt.Sprintf("  reports byte-identical across schedules: %v\n", res.ReportsIdentical)
	return out, nil
}
