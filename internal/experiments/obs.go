package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"spe/internal/campaign"
	"spe/internal/corpus"
	"spe/internal/harness"
	"spe/internal/obs"
)

// ObsBenchResult is the machine-readable outcome of the telemetry-overhead
// benchmark (emitted as BENCH_obs.json by cmd/spebench). It pins the
// observability layer's two contracts: the report is byte-identical with
// telemetry fully live (metrics, status server under active scraping, SSE
// consumer, progress ticker) versus completely off, and the throughput
// cost of running it all stays within measurement noise.
type ObsBenchResult struct {
	Workers int `json:"workers"`
	Files   int `json:"files"`
	// Rounds is how many alternating off/on campaign pairs ran; each
	// side's VPS is the best over its rounds (max is the standard
	// noise-robust estimator for throughput).
	Rounds           int     `json:"rounds"`
	CampaignVariants int     `json:"campaign_variants"`
	OffVPS           float64 `json:"campaign_telemetry_off_variants_per_sec"`
	OnVPS            float64 `json:"campaign_telemetry_on_variants_per_sec"`
	// OverheadPercent is (off-on)/off*100; negative means the telemetry
	// run happened to be faster (i.e. the difference is noise).
	OverheadPercent float64 `json:"telemetry_overhead_percent"`
	// ReportsIdentical confirms the off and on campaigns produced
	// byte-identical reports while /metrics and /status were being
	// scraped concurrently.
	ReportsIdentical bool `json:"reports_identical"`
	// MetricsServed / StatusServed confirm the live endpoints responded
	// mid-campaign with the documented content (the key series present,
	// the status document well-formed).
	MetricsServed bool `json:"metrics_served"`
	StatusServed  bool `json:"status_served"`
}

// obsBenchRounds is the number of off/on pairs ObsBench alternates
// through. Alternation (off, on, off, on, ...) rather than blocks keeps
// slow drift (thermal, page cache) from biasing one side.
const obsBenchRounds = 3

// ObsBench measures full-campaign variants/sec with telemetry off versus
// fully on — metric recording, an embedded status server being scraped
// throughout the run, and a progress ticker — and cross-checks that the
// reports are byte-identical. When scale.BenchJSON is set the result is
// also written there as JSON.
func ObsBench(scale Scale) (string, error) {
	scale = scale.withDefaults()
	progs := corpus.Seeds()
	progs = append(progs, corpus.Generate(corpus.Config{N: scale.CampaignCorpus, Seed: scale.Seed + 4})...)
	res := &ObsBenchResult{Workers: scale.Workers, Files: len(progs), Rounds: obsBenchRounds}

	baseCfg := harness.Config{
		Corpus:             progs,
		Versions:           []string{"trunk"},
		Threshold:          -1,
		MaxVariantsPerFile: scale.MaxVariants,
		Workers:            scale.Workers,
	}

	var offReport, onReport string
	for round := 0; round < obsBenchRounds; round++ {
		// telemetry off: the plain campaign
		start := time.Now()
		rep, err := harness.Run(baseCfg)
		if err != nil {
			return "", fmt.Errorf("experiments: obs: off campaign: %w", err)
		}
		if vps := float64(rep.Stats.Variants) / time.Since(start).Seconds(); vps > res.OffVPS {
			res.OffVPS = vps
		}
		offReport = rep.Format()
		res.CampaignVariants = rep.Stats.Variants

		// telemetry on: metrics + live server + active scraper + SSE
		// consumer + progress ticker, everything the -status-addr and
		// -progress flags would attach
		rep, vps, err := obsCampaign(baseCfg, res)
		if err != nil {
			return "", err
		}
		if vps > res.OnVPS {
			res.OnVPS = vps
		}
		onReport = rep.Format()
	}
	res.OverheadPercent = (res.OffVPS - res.OnVPS) / res.OffVPS * 100
	res.ReportsIdentical = offReport == onReport
	if !res.ReportsIdentical {
		return "", fmt.Errorf("experiments: obs: telemetry-on report diverges from telemetry-off report")
	}

	if scale.BenchJSON != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return "", fmt.Errorf("experiments: obs: %w", err)
		}
		if err := os.WriteFile(scale.BenchJSON, append(data, '\n'), 0o644); err != nil {
			return "", fmt.Errorf("experiments: obs: %w", err)
		}
	}

	out := "Telemetry overhead: campaign with live metrics/status/SSE/ticker vs none\n"
	out += fmt.Sprintf("  corpus: %d files, %d campaign variants (workers=%d, rounds=%d)\n",
		res.Files, res.CampaignVariants, res.Workers, res.Rounds)
	out += fmt.Sprintf("  full campaign: off %8.0f variants/s | on %8.0f variants/s | overhead %+.2f%%\n",
		res.OffVPS, res.OnVPS, res.OverheadPercent)
	out += fmt.Sprintf("  reports byte-identical: %v, metrics served: %v, status served: %v\n",
		res.ReportsIdentical, res.MetricsServed, res.StatusServed)
	return out, nil
}

// obsCampaign runs one telemetry-on campaign round: a fresh Telemetry, a
// live HTTP server on an ephemeral port, a background scraper hitting
// /metrics and /status for the whole run, an /events SSE consumer, and a
// progress ticker writing to io.Discard. It verifies the scraped payloads
// and folds the endpoint checks into res. The scrape (200ms) and ticker
// (250ms) cadences are already 25-100x more aggressive than any real
// deployment (Prometheus defaults to 15s scrapes, -progress to 30s), so
// the measured overhead is a conservative bound.
func obsCampaign(cfg harness.Config, res *ObsBenchResult) (*harness.Report, float64, error) {
	tel := campaign.NewTelemetry()
	srv, err := obs.Serve("127.0.0.1:0", tel.Handler())
	if err != nil {
		return nil, 0, fmt.Errorf("experiments: obs: %w", err)
	}
	defer srv.Close()
	stopTicker := tel.StartProgressTicker(io.Discard, 250*time.Millisecond)
	defer stopTicker()

	// the SSE consumer streams /events for the duration of the campaign
	_, sseCancel := newSSEConsumer(srv.Addr)
	defer sseCancel()

	scrapeDone := make(chan struct{})
	stopScrape := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for {
			if body, ok := httpGet(srv.Addr, "/metrics"); ok &&
				strings.Contains(body, "spe_variants_total") &&
				strings.Contains(body, "spe_shard_latency_ms") &&
				strings.Contains(body, "spe_findings_total") {
				res.MetricsServed = true
			}
			if body, ok := httpGet(srv.Addr, "/status"); ok {
				var st campaign.Status
				if json.Unmarshal([]byte(body), &st) == nil && st.PlannedVariants > 0 {
					res.StatusServed = true
				}
			}
			select {
			case <-stopScrape:
				return
			case <-time.After(200 * time.Millisecond):
			}
		}
	}()

	cfg.Telemetry = tel
	start := time.Now()
	rep, err := harness.Run(cfg)
	elapsed := time.Since(start).Seconds()
	close(stopScrape)
	<-scrapeDone
	if err != nil {
		return nil, 0, fmt.Errorf("experiments: obs: on campaign: %w", err)
	}
	return rep, float64(rep.Stats.Variants) / elapsed, nil
}

// httpGet fetches one telemetry endpoint with a short timeout.
func httpGet(addr, path string) (string, bool) {
	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Get("http://" + addr + path)
	if err != nil {
		return "", false
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return "", false
	}
	return string(body), true
}

// newSSEConsumer opens a streaming GET of /events and drains it in the
// background until cancel runs. Errors are ignored — the consumer exists
// to exercise the streaming path under load, and the equivalence and
// endpoint assertions live elsewhere.
func newSSEConsumer(addr string) (started bool, cancel func()) {
	req, err := http.NewRequest("GET", "http://"+addr+"/events", nil)
	if err != nil {
		return false, func() {}
	}
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		return false, func() {}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		io.Copy(io.Discard, resp.Body)
	}()
	return true, func() {
		resp.Body.Close()
		<-done
	}
}
