package experiments

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// tinyScale keeps the smoke tests fast.
var tinyScale = Scale{
	CorpusFiles:    12,
	MaxVariants:    30,
	CoverageFiles:  6,
	CoverageVars:   6,
	CampaignCorpus: 4,
}

func TestTable1Smoke(t *testing.T) {
	out, err := Table1(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Naive", "Our", "orders of magnitude"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Smoke(t *testing.T) {
	out, err := Table2(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "#Holes") || !strings.Contains(out, "Original") {
		t.Errorf("Table2 malformed:\n%s", out)
	}
}

func TestFigure8Smoke(t *testing.T) {
	out, err := Figure8(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 8(a)") || !strings.Contains(out, "Figure 8(b)") {
		t.Errorf("Figure8 malformed:\n%s", out)
	}
}

func TestTable4Smoke(t *testing.T) {
	out, rep, err := Table4(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "minicc-trunk") {
		t.Errorf("Table4 malformed:\n%s", out)
	}
	if len(rep.Findings) == 0 {
		t.Error("trunk campaign found nothing")
	}
}

func TestFigure9Smoke(t *testing.T) {
	out, err := Figure9(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SPE", "PM-10", "PM-30", "Baseline coverage"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure9 missing %q:\n%s", want, out)
		}
	}
}

func TestExample6Output(t *testing.T) {
	out := Example6()
	for _, want := range []string{"128", "36", "40"} {
		if !strings.Contains(out, want) {
			t.Errorf("Example6 missing %q:\n%s", want, out)
		}
	}
}

func TestCorpusDeterministic(t *testing.T) {
	a := Corpus(tinyScale)
	b := Corpus(tinyScale)
	if len(a) != len(b) {
		t.Fatal("corpus size varies")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("corpus not deterministic")
		}
	}
}

func TestOracleBenchSmoke(t *testing.T) {
	scale := tinyScale
	scale.BenchJSON = t.TempDir() + "/BENCH_oracle.json"
	scale.Paranoid = true
	out, err := OracleBench(scale)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"bytecode", "speedup", "byte-identical: true", "paranoid cross-check: true"} {
		if !strings.Contains(out, want) {
			t.Errorf("OracleBench missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(scale.BenchJSON)
	if err != nil {
		t.Fatalf("BENCH_oracle.json not written: %v", err)
	}
	var res OracleBenchResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("BENCH_oracle.json malformed: %v", err)
	}
	if !res.ReportsIdentical || !res.ParanoidChecked {
		t.Errorf("oracle bench result not verified: %+v", res)
	}
	if res.BytecodeVPS <= 0 || res.TreeVPS <= 0 {
		t.Errorf("oracle bench recorded no throughput: %+v", res)
	}
}
