package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"spe/internal/corpus"
	"spe/internal/harness"
)

// BackendBenchResult is the machine-readable outcome of the backend
// benchmark (emitted as BENCH_backend.json by cmd/spebench). Where the
// variants experiment isolates the front end (instantiation), this one
// measures the per-variant cost of the execution backends — the reference
// interpreter and the minicc compile+run pipeline — with pooled,
// template-cached state versus the cold-per-variant baseline, plus the
// minicc VM's own speed axes: threaded dispatch over fused IR versus the
// monolithic opcode switch, and the batched per-config shard walk versus
// the variant-outer interleaving.
type BackendBenchResult struct {
	Workers int `json:"workers"`
	Files   int `json:"files"`
	// full differential campaign throughput, pooled backends vs cold
	CampaignVariants int     `json:"campaign_variants"`
	ColdVPS          float64 `json:"campaign_cold_variants_per_sec"`
	ReuseVPS         float64 `json:"campaign_reuse_variants_per_sec"`
	Speedup          float64 `json:"campaign_reuse_speedup"`
	// backend execution axes: switch dispatch (batching on) and per-config
	// batching off (threaded), both against the pooled default
	BackendSwitchVPS       float64 `json:"campaign_backend_switch_dispatch_variants_per_sec"`
	BackendNoBatchVPS      float64 `json:"campaign_backend_nobatch_variants_per_sec"`
	BackendThreadedSpeedup float64 `json:"campaign_backend_threaded_dispatch_speedup"`
	BackendBatchSpeedup    float64 `json:"campaign_backend_batch_speedup"`
	// ReportsIdentical confirms every backend reuse/dispatch/batching
	// combination produced byte-identical reports; ParanoidChecked
	// additionally confirms a reuse campaign passed the per-variant
	// paranoid cross-checks (render+reparse+binding assertion and
	// patched-IR vs fresh-lowering).
	ReportsIdentical bool `json:"reports_identical"`
	ParanoidChecked  bool `json:"paranoid_checked"`
}

// BackendBench measures full-campaign variants/sec with backend reuse on
// and off — the reuse engine additionally under both minicc dispatch
// engines and with per-config batching on and off — and cross-checks
// report equivalence across every combination. When scale.BenchJSON is
// set the result is also written there as JSON.
func BackendBench(scale Scale) (string, error) {
	scale = scale.withDefaults()
	progs := corpus.Seeds()
	progs = append(progs, corpus.Generate(corpus.Config{N: scale.CampaignCorpus, Seed: scale.Seed + 2})...)
	res := &BackendBenchResult{Workers: scale.Workers, Files: len(progs)}

	campaign := func(noReuse bool, backendDispatch string, noBackendBatch, paranoid bool) (*harness.Report, float64, error) {
		cfg := harness.Config{
			Corpus:             progs,
			Versions:           []string{"trunk"},
			Threshold:          -1,
			MaxVariantsPerFile: scale.MaxVariants,
			Workers:            scale.Workers,
			NoBackendReuse:     noReuse,
			BackendDispatch:    backendDispatch,
			NoBackendBatch:     noBackendBatch,
			Paranoid:           paranoid,
			Telemetry:          scale.Telemetry,
		}
		start := time.Now()
		rep, err := harness.Run(cfg)
		return rep, time.Since(start).Seconds(), err
	}

	coldRep, coldSec, err := campaign(true, "", false, false)
	if err != nil {
		return "", fmt.Errorf("experiments: backend: cold campaign: %w", err)
	}
	reuseRep, reuseSec, err := campaign(false, "", false, false)
	if err != nil {
		return "", fmt.Errorf("experiments: backend: reuse campaign: %w", err)
	}
	switchRep, switchSec, err := campaign(false, "switch", false, false)
	if err != nil {
		return "", fmt.Errorf("experiments: backend: switch-dispatch campaign: %w", err)
	}
	noBatchRep, noBatchSec, err := campaign(false, "", true, false)
	if err != nil {
		return "", fmt.Errorf("experiments: backend: no-batch campaign: %w", err)
	}
	res.CampaignVariants = reuseRep.Stats.Variants
	res.ColdVPS = float64(coldRep.Stats.Variants) / coldSec
	res.ReuseVPS = float64(reuseRep.Stats.Variants) / reuseSec
	res.BackendSwitchVPS = float64(switchRep.Stats.Variants) / switchSec
	res.BackendNoBatchVPS = float64(noBatchRep.Stats.Variants) / noBatchSec
	res.Speedup = res.ReuseVPS / res.ColdVPS
	res.BackendThreadedSpeedup = res.ReuseVPS / res.BackendSwitchVPS
	res.BackendBatchSpeedup = res.ReuseVPS / res.BackendNoBatchVPS
	base := reuseRep.Format()
	res.ReportsIdentical = coldRep.Format() == base &&
		switchRep.Format() == base && noBatchRep.Format() == base
	if !res.ReportsIdentical {
		return "", fmt.Errorf("experiments: backend: report diverges across reuse/dispatch/batch modes")
	}
	if scale.Paranoid {
		paranoidRep, _, err := campaign(false, "", false, true)
		if err != nil {
			return "", fmt.Errorf("experiments: backend: paranoid cross-check: %w", err)
		}
		if paranoidRep.Format() != base {
			return "", fmt.Errorf("experiments: backend: paranoid report diverges")
		}
		res.ParanoidChecked = true
	}

	if scale.BenchJSON != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return "", fmt.Errorf("experiments: backend: %w", err)
		}
		if err := os.WriteFile(scale.BenchJSON, append(data, '\n'), 0o644); err != nil {
			return "", fmt.Errorf("experiments: backend: %w", err)
		}
	}

	out := "Backend throughput: pooled interp/minicc state vs cold per-variant backends\n"
	out += fmt.Sprintf("  corpus: %d files, %d campaign variants (workers=%d)\n",
		res.Files, res.CampaignVariants, res.Workers)
	out += fmt.Sprintf("  full campaign: cold %8.0f variants/s | reuse %8.0f variants/s | speedup %.2fx\n",
		res.ColdVPS, res.ReuseVPS, res.Speedup)
	out += fmt.Sprintf("  dispatch: switch %8.0f variants/s | threaded speedup %.2fx\n",
		res.BackendSwitchVPS, res.BackendThreadedSpeedup)
	out += fmt.Sprintf("  batching: off    %8.0f variants/s | batch speedup    %.2fx\n",
		res.BackendNoBatchVPS, res.BackendBatchSpeedup)
	out += fmt.Sprintf("  reports byte-identical: %v, paranoid cross-check: %v\n",
		res.ReportsIdentical, res.ParanoidChecked)
	return out, nil
}
