package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"spe/internal/corpus"
	"spe/internal/harness"
)

// BackendBenchResult is the machine-readable outcome of the backend-reuse
// benchmark (emitted as BENCH_backend.json by cmd/spebench). Where the
// variants experiment isolates the front end (instantiation), this one
// measures what PR 4 targets: the per-variant cost of the execution
// backends — the reference interpreter and the minicc compile+run pipeline
// — with pooled, template-cached state versus the cold-per-variant
// baseline that PR 3 shipped.
type BackendBenchResult struct {
	Workers int `json:"workers"`
	Files   int `json:"files"`
	// full differential campaign throughput, pooled backends vs cold
	CampaignVariants int     `json:"campaign_variants"`
	ColdVPS          float64 `json:"campaign_cold_variants_per_sec"`
	ReuseVPS         float64 `json:"campaign_reuse_variants_per_sec"`
	Speedup          float64 `json:"campaign_reuse_speedup"`
	// ReportsIdentical confirms the pooled and cold campaigns produced
	// byte-identical reports; ParanoidChecked additionally confirms a
	// reuse campaign passed the per-variant paranoid cross-checks
	// (render+reparse+binding assertion and patched-IR vs fresh-lowering).
	ReportsIdentical bool `json:"reports_identical"`
	ParanoidChecked  bool `json:"paranoid_checked"`
}

// BackendBench measures full-campaign variants/sec with backend reuse on
// and off and cross-checks report equivalence. When scale.BenchJSON is set
// the result is also written there as JSON.
func BackendBench(scale Scale) (string, error) {
	scale = scale.withDefaults()
	progs := corpus.Seeds()
	progs = append(progs, corpus.Generate(corpus.Config{N: scale.CampaignCorpus, Seed: scale.Seed + 2})...)
	res := &BackendBenchResult{Workers: scale.Workers, Files: len(progs)}

	campaign := func(noReuse, paranoid bool) (*harness.Report, float64, error) {
		cfg := harness.Config{
			Corpus:             progs,
			Versions:           []string{"trunk"},
			Threshold:          -1,
			MaxVariantsPerFile: scale.MaxVariants,
			Workers:            scale.Workers,
			NoBackendReuse:     noReuse,
			Paranoid:           paranoid,
			Telemetry:          scale.Telemetry,
		}
		start := time.Now()
		rep, err := harness.Run(cfg)
		return rep, time.Since(start).Seconds(), err
	}

	coldRep, coldSec, err := campaign(true, false)
	if err != nil {
		return "", fmt.Errorf("experiments: backend: cold campaign: %w", err)
	}
	reuseRep, reuseSec, err := campaign(false, false)
	if err != nil {
		return "", fmt.Errorf("experiments: backend: reuse campaign: %w", err)
	}
	res.CampaignVariants = reuseRep.Stats.Variants
	res.ColdVPS = float64(coldRep.Stats.Variants) / coldSec
	res.ReuseVPS = float64(reuseRep.Stats.Variants) / reuseSec
	res.Speedup = res.ReuseVPS / res.ColdVPS
	res.ReportsIdentical = coldRep.Format() == reuseRep.Format()
	if !res.ReportsIdentical {
		return "", fmt.Errorf("experiments: backend: reuse report diverges from cold baseline")
	}
	if scale.Paranoid {
		paranoidRep, _, err := campaign(false, true)
		if err != nil {
			return "", fmt.Errorf("experiments: backend: paranoid cross-check: %w", err)
		}
		if paranoidRep.Format() != reuseRep.Format() {
			return "", fmt.Errorf("experiments: backend: paranoid report diverges")
		}
		res.ParanoidChecked = true
	}

	if scale.BenchJSON != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return "", fmt.Errorf("experiments: backend: %w", err)
		}
		if err := os.WriteFile(scale.BenchJSON, append(data, '\n'), 0o644); err != nil {
			return "", fmt.Errorf("experiments: backend: %w", err)
		}
	}

	out := "Backend throughput: pooled interp/minicc state vs cold per-variant backends\n"
	out += fmt.Sprintf("  corpus: %d files, %d campaign variants (workers=%d)\n",
		res.Files, res.CampaignVariants, res.Workers)
	out += fmt.Sprintf("  full campaign: cold %8.0f variants/s | reuse %8.0f variants/s | speedup %.2fx\n",
		res.ColdVPS, res.ReuseVPS, res.Speedup)
	out += fmt.Sprintf("  reports byte-identical: %v, paranoid cross-check: %v\n",
		res.ReportsIdentical, res.ParanoidChecked)
	return out, nil
}
