// Package spebench holds the top-level benchmark harness: one benchmark
// per table and figure of the paper's evaluation (see DESIGN.md §5 for the
// experiment index), plus micro-benchmarks for the enumeration engine
// itself. Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// The per-experiment output (the actual tables/figures) is logged once per
// benchmark via b.Log; run with -v to see it, or use cmd/spebench.
package spebench_test

import (
	"math/big"
	"runtime"
	"sync"
	"testing"

	"spe/internal/campaign"
	"spe/internal/cc"
	"spe/internal/corpus"
	"spe/internal/experiments"
	"spe/internal/minicc"
	"spe/internal/partition"
	"spe/internal/skeleton"
	"spe/internal/spe"
)

// benchScale keeps benchmark iterations affordable while preserving the
// experiments' shape.
var benchScale = experiments.Scale{
	CorpusFiles:    60,
	MaxVariants:    80,
	CoverageFiles:  12,
	CoverageVars:   12,
	CampaignCorpus: 12,
}

var logOnce sync.Map

func logExperiment(b *testing.B, name, out string) {
	if _, dup := logOnce.LoadOrStore(name, true); !dup {
		b.Log("\n" + out)
	}
}

// BenchmarkTable1 regenerates the enumeration size-reduction table.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.Table1(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		logExperiment(b, "table1", out)
	}
}

// BenchmarkTable2 regenerates the corpus characteristics table.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.Table2(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		logExperiment(b, "table2", out)
	}
}

// BenchmarkTable3 regenerates the stable-release crash-signature table.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.Table3(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		logExperiment(b, "table3", out)
	}
}

// BenchmarkTable4 regenerates the trunk bug-campaign overview.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, _, err := experiments.Table4(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		logExperiment(b, "table4", out)
	}
}

// BenchmarkFigure8 regenerates the variant-count distribution figure.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.Figure8(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		logExperiment(b, "fig8", out)
	}
}

// BenchmarkFigure9 regenerates the coverage-improvement comparison.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.Figure9(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		logExperiment(b, "fig9", out)
	}
}

// BenchmarkFigure10 regenerates the bug-characteristics histograms.
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.Figure10(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		logExperiment(b, "fig10", out)
	}
}

// BenchmarkGenerality regenerates the §5.3 verified-compiler (CompCert
// analogue) crash campaign.
func BenchmarkGenerality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.Generality(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		logExperiment(b, "generality", out)
	}
}

// BenchmarkExample6 measures the paper's Example 6 arithmetic (PartitionScope
// vs exact orbit counting on the Figure 7 configuration).
func BenchmarkExample6(b *testing.B) {
	cfg := &spe.TwoLevelConfig{GlobalHoles: 3, GlobalVars: 2, ScopeHoles: []int{2}, ScopeVars: []int{2}}
	for i := 0; i < b.N; i++ {
		if got := cfg.PaperCount(); got.Cmp(big.NewInt(36)) != 0 {
			b.Fatalf("paper count = %s", got)
		}
		if got := cfg.CanonicalProblem().CanonicalCount(); got.Cmp(big.NewInt(40)) != 0 {
			b.Fatalf("canonical count = %s", got)
		}
	}
}

// --- campaign engine ---

// benchmarkCampaign measures a full differential-testing campaign over the
// seed corpus at a given worker count. Comparing BenchmarkCampaignWorkers1
// with BenchmarkCampaignWorkersNumCPU gives the parallel-speedup curve of
// the sharded engine (the reports are byte-identical either way).
func benchmarkCampaign(b *testing.B, workers int) {
	cfg := campaign.Config{
		Corpus:             corpus.Seeds(),
		Versions:           []string{"trunk"},
		MaxVariantsPerFile: 100,
		Workers:            workers,
	}
	for i := 0; i < b.N; i++ {
		rep, err := campaign.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Findings) == 0 {
			b.Fatal("campaign found nothing")
		}
	}
}

func BenchmarkCampaignWorkers1(b *testing.B) { benchmarkCampaign(b, 1) }

func BenchmarkCampaignWorkersNumCPU(b *testing.B) { benchmarkCampaign(b, runtime.NumCPU()) }

// benchmarkCampaignVariantsPerSec measures full-campaign throughput in
// variants/sec through either pipeline flavor. Comparing the AST benchmark
// with the Render one isolates the front-end cost inside the complete
// differential pipeline; BenchmarkInstantiation* below isolates the
// instantiation stage itself.
func benchmarkCampaignVariantsPerSec(b *testing.B, renderPath, noReuse bool) {
	cfg := campaign.Config{
		Corpus:             corpus.Seeds(),
		Versions:           []string{"trunk"},
		MaxVariantsPerFile: 100,
		Workers:            runtime.NumCPU(),
		ForceRenderPath:    renderPath,
		NoBackendReuse:     noReuse,
	}
	variants := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := campaign.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		variants += rep.Stats.Variants
	}
	b.ReportMetric(float64(variants)/b.Elapsed().Seconds(), "variants/s")
}

// BenchmarkCampaignVariantsAST is the full hot path: AST-resident
// instantiation plus pooled backends (interpreter machine reuse and
// skeleton-keyed compiler IR templates) — the default configuration.
func BenchmarkCampaignVariantsAST(b *testing.B) { benchmarkCampaignVariantsPerSec(b, false, false) }

// BenchmarkCampaignVariantsNoReuse is the PR 3 baseline: AST-resident
// instantiation but cold backends per variant. Comparing with
// BenchmarkCampaignVariantsAST isolates what backend reuse buys.
func BenchmarkCampaignVariantsNoReuse(b *testing.B) {
	benchmarkCampaignVariantsPerSec(b, false, true)
}

// BenchmarkCampaignVariantsRender is the historical render+reparse
// baseline (cold backends, text pipeline).
func BenchmarkCampaignVariantsRender(b *testing.B) { benchmarkCampaignVariantsPerSec(b, true, true) }

// benchmarkInstantiation measures the variant-preparation stage alone:
// producing an analyzed program for each enumeration index of the seed
// corpus, through the render→re-lex→re-parse→re-sema cycle or via
// AST-resident in-place instantiation. The measured loop is
// experiments.MeasureInstantiation, shared with the spebench variants
// experiment so both report the same thing.
func benchmarkInstantiation(b *testing.B, ast bool) {
	seeds := corpus.Seeds()
	variants := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, _, err := experiments.MeasureInstantiation(seeds, 100, ast)
		if err != nil {
			b.Fatal(err)
		}
		variants += n
	}
	b.ReportMetric(float64(variants)/b.Elapsed().Seconds(), "variants/s")
}

// BenchmarkInstantiationAST measures AST-resident variant instantiation.
func BenchmarkInstantiationAST(b *testing.B) { benchmarkInstantiation(b, true) }

// BenchmarkInstantiationRender measures the historical text round trip.
func BenchmarkInstantiationRender(b *testing.B) { benchmarkInstantiation(b, false) }

// TestCampaignReportDeterminism pins the engine's central invariant at the
// top level: sequential and maximally parallel campaigns render
// byte-identical reports.
func TestCampaignReportDeterminism(t *testing.T) {
	cfg := campaign.Config{
		Corpus:             corpus.Seeds()[:6],
		Versions:           []string{"trunk"},
		MaxVariantsPerFile: 80,
	}
	cfg.Workers = 1
	seq, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = runtime.NumCPU() + 2
	par, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Format() != par.Format() {
		t.Errorf("parallel report diverges from sequential:\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
			seq.Format(), cfg.Workers, par.Format())
	}
}

// --- engine micro-benchmarks ---

// BenchmarkStirling measures the Stirling-number computation behind the
// paper's Eq. 1/2 counting.
func BenchmarkStirling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		partition.SumStirling(60, 8)
	}
}

// BenchmarkCanonicalEnumeration measures the grouped-RGS enumerator on a
// mixed-scope instance (3 groups, 12 holes).
func BenchmarkCanonicalEnumeration(b *testing.B) {
	p := &partition.Problem{
		NumHoles:   12,
		GroupSizes: []int{3, 2, 2},
		Allowed: [][]int{
			{0}, {0}, {0}, {0},
			{0, 1}, {0, 1}, {0, 1}, {0, 1},
			{0, 2}, {0, 2}, {0, 2}, {0, 2},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.EachCanonical(func([]partition.VarRef) bool { return true })
	}
}

// BenchmarkCanonicalCountDP measures the dynamic-programming counter on the
// same instance.
func BenchmarkCanonicalCountDP(b *testing.B) {
	p := &partition.Problem{
		NumHoles:   40,
		GroupSizes: []int{4, 3, 3},
		Allowed:    make([][]int, 40),
	}
	for i := range p.Allowed {
		switch i % 3 {
		case 0:
			p.Allowed[i] = []int{0}
		case 1:
			p.Allowed[i] = []int{0, 1}
		default:
			p.Allowed[i] = []int{0, 2}
		}
	}
	for i := 0; i < b.N; i++ {
		p.CanonicalCount()
	}
}

// BenchmarkSkeletonBuild measures skeleton extraction on a paper-figure
// seed.
func BenchmarkSkeletonBuild(b *testing.B) {
	src := `
int a, b;
int main() {
    int c = 0, d = 0;
    b = c + d;
    if (a) { int e = 1; c = e + b; }
    for (int i = 0; i < 4; i++) d += i;
    return a + b + c + d;
}
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		skeleton.MustBuild(src)
	}
}

// BenchmarkCompileO2 measures the minicc -O2 pipeline on a seed program.
func BenchmarkCompileO2(b *testing.B) {
	prog := mustAnalyzeBench(`
int g1 = 5, g2 = 7;
int swap() { int t = g1; g1 = g2; g2 = t; return g1 - g2; }
int main() {
    int d = swap();
    int s = 0;
    for (int i = 0; i < 8; i++) s += i * 2;
    return d + s;
}
`)
	c := &minicc.Compiler{Opt: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := c.Compile(prog)
		if !out.Ok() {
			b.Fatal("compile failed")
		}
	}
}

func mustAnalyzeBench(src string) *cc.Program { return cc.MustAnalyze(src) }
