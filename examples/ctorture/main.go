// Ctorture: the paper's §5.2 size-reduction study — build a c-torture-style
// corpus, derive every skeleton, and compare the naive and SPE enumeration
// set sizes (Tables 1 and 2, Figure 8).
//
// Run with: go run ./examples/ctorture
package main

import (
	"fmt"

	"spe/internal/experiments"
)

func main() {
	scale := experiments.Scale{CorpusFiles: 80}
	for _, f := range []func(experiments.Scale) (string, error){
		experiments.Table1,
		experiments.Table2,
		experiments.Figure8,
	} {
		out, err := f(scale)
		if err != nil {
			panic(err)
		}
		fmt.Println(out)
	}
	fmt.Println(experiments.Example6())
}
