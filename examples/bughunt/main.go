// Bughunt: a miniature version of the paper's §5.3 campaign — enumerate
// skeletons of the handwritten paper-figure seeds, filter undefined
// behavior with the reference interpreter, differential-test the seeded
// trunk compiler at -O0..-O3, and print the deduplicated findings.
//
// Run with: go run ./examples/bughunt
package main

import (
	"fmt"

	"spe/internal/corpus"
	"spe/internal/harness"
	"spe/internal/report"
)

func main() {
	fmt.Println("hunting bugs in minicc-trunk with skeletons from the paper's figures...")
	rep, err := harness.Run(harness.Config{
		Corpus:             corpus.Seeds(),
		Versions:           []string{"trunk"},
		MaxVariantsPerFile: 300,
		ReduceTestCases:    true, // delta-debug each finding before "filing"
	})
	if err != nil {
		panic(err)
	}

	t := &report.Table{
		Title:  "Findings",
		Header: []string{"Bug", "Kind", "Component", "Prio", "Opt levels", "Hits", "Signature"},
	}
	for _, fd := range rep.Findings {
		opts := ""
		for _, o := range fd.OptLevels {
			opts += fmt.Sprintf("-O%d ", o)
		}
		prio := ""
		if fd.Priority > 0 {
			prio = fmt.Sprintf("P%d", fd.Priority)
		}
		sig := fd.Signature
		if len(sig) > 60 {
			sig = sig[:57] + "..."
		}
		t.AddRow(fd.BugID, fd.Kind.String(), fd.Component, prio, opts,
			fmt.Sprint(fd.Occurrences), sig)
	}
	fmt.Println(t)
	fmt.Printf("files: %d   variants: %d (clean %d, UB-filtered %d)   executions: %d\n",
		rep.Stats.Files, rep.Stats.Variants, rep.Stats.VariantsClean,
		rep.Stats.VariantsUB, rep.Stats.Executions)
	fmt.Printf("findings: %d crash, %d wrong-code, %d performance\n",
		rep.Stats.CrashFindings, rep.Stats.WrongFindings, rep.Stats.PerfFindings)

	// show one reduced test case, like the paper's bug reports
	for _, fd := range rep.Findings {
		if fd.BugID == "69801" {
			fmt.Printf("\nsample test case for bug %s (%s):\n%s", fd.BugID, fd.Signature, fd.TestCase)
			break
		}
	}
}
