// Quickstart: skeletal program enumeration on the paper's Figure 5 WHILE
// program and Figure 1 C program.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"spe/internal/skeleton"
	"spe/internal/spe"
	"spe/internal/whilelang"
)

func main() {
	// --- Part 1: the WHILE language of paper §3 (Figure 5) ---
	p := whilelang.Figure5()
	fmt.Println("Figure 5 program:")
	fmt.Println(p)
	fmt.Println("Skeleton:")
	fmt.Println(p.SkeletonString())
	fmt.Printf("Naive enumeration: %s programs (2 variables, 6 holes)\n", p.NaiveCount())
	fmt.Printf("Canonical (non-alpha-equivalent): %s programs\n\n", p.CanonicalCount())

	fmt.Println("First four canonical variants:")
	n := 0
	p.EachCanonical(func(src string) bool {
		fmt.Println(src)
		n++
		return n < 4
	})

	// --- Part 2: a C skeleton (paper Figure 1) ---
	src := `
int main() {
    int a = 0, b = 1;
    b = b - a;
    if (a)
        a = a - b;
    return a + b;
}
`
	sk := skeleton.MustBuild(src)
	fmt.Println("\nFigure 1 C skeleton (holes numbered):")
	fmt.Println(sk.String())

	for _, mode := range []spe.Mode{spe.ModeNaive, spe.ModePaper, spe.ModeCanonical} {
		c := spe.Count(sk, spe.Options{Mode: mode})
		fmt.Printf("%-10s count: %s\n", mode, c)
	}

	fmt.Println("\nThree canonical variants (note the P2/P3 patterns of Figure 1):")
	shown := 0
	_, err := spe.Enumerate(sk, spe.Options{Mode: spe.ModeCanonical}, func(v spe.Variant) bool {
		fmt.Printf("--- variant %d ---\n%s", v.Index+1, v.Source)
		shown++
		return shown < 3
	})
	if err != nil {
		panic(err)
	}
}
