// Coverage: the paper's Figure 9 experiment in miniature — compare
// compiler coverage achieved by SPE enumeration against Orion-style
// statement-deletion mutation (PM-10/20/30), over the same seed corpus.
//
// Run with: go run ./examples/coverage
package main

import (
	"fmt"

	"spe/internal/corpus"
	"spe/internal/harness"
)

func main() {
	seeds := corpus.Seeds()
	seeds = append(seeds, corpus.Generate(corpus.Config{N: 10, Seed: 99})...)
	fmt.Printf("measuring minicc coverage over %d seed programs...\n\n", len(seeds))

	rep, err := harness.CoverageExperiment(harness.CoverageConfig{
		Corpus:          seeds,
		VariantsPerFile: 20,
		PMLevels:        []int{10, 20, 30},
		PMVariants:      20,
		Seed:            7,
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("baseline (original programs): function %.1f%%, line %.1f%%\n",
		rep.Baseline.Function*100, rep.Baseline.Line*100)
	spe := rep.SPE.Improvement(rep.Baseline)
	fmt.Printf("SPE improvement:   function +%.2f pts, line +%.2f pts\n", spe.Function, spe.Line)
	for _, x := range []int{10, 20, 30} {
		pm := rep.PM[x].Improvement(rep.Baseline)
		fmt.Printf("PM-%-2d improvement: function +%.2f pts, line +%.2f pts\n", x, pm.Function, pm.Line)
	}
	fmt.Println("\n(paper Figure 9: SPE ~5%/2.4% improvements vs <1% for mutation)")
}
