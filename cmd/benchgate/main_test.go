package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeJSON(t *testing.T, dir, name, body string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCompareArtifact(t *testing.T) {
	base := t.TempDir()
	fresh := t.TempDir()
	writeJSON(t, base, "b.json", `{"a_per_sec": 100, "b_per_sec": 100, "old_per_sec": 50, "speedup": 2, "files": 3}`)
	writeJSON(t, fresh, "b.json", `{"a_per_sec": 85, "b_per_sec": 79.9, "new_per_sec": 10, "speedup": 1, "files": 3}`)

	rows, err := compareArtifact(filepath.Join(base, "b.json"), filepath.Join(fresh, "b.json"), "b.json", 0.20)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]status)
	for _, r := range rows {
		got[r.metric] = r.status
	}
	// only *_per_sec keys participate; speedup and files must not appear
	if _, ok := got["speedup"]; ok {
		t.Error("non-throughput key compared")
	}
	if got["a_per_sec"] != statusOK {
		t.Errorf("a_per_sec (−15%% at 20%% tolerance) = %v, want ok", got["a_per_sec"])
	}
	if got["b_per_sec"] != statusRegressed {
		t.Errorf("b_per_sec (−20.1%% at 20%% tolerance) = %v, want regressed", got["b_per_sec"])
	}
	// one-sided metrics are skipped, never failed
	if got["old_per_sec"] != statusSkipped || got["new_per_sec"] != statusSkipped {
		t.Errorf("one-sided metrics = %v/%v, want skipped", got["old_per_sec"], got["new_per_sec"])
	}
}

func TestCompareArtifactImprovementPasses(t *testing.T) {
	dir := t.TempDir()
	writeJSON(t, dir, "base.json", `{"x_per_sec": 100}`)
	writeJSON(t, dir, "fresh.json", `{"x_per_sec": 1000}`)
	rows, err := compareArtifact(filepath.Join(dir, "base.json"), filepath.Join(dir, "fresh.json"), "a", 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].status != statusOK {
		t.Fatalf("10x improvement flagged: %+v", rows)
	}
}

func TestParseOverrides(t *testing.T) {
	m, err := parseOverrides("BENCH_obs.json=0.5, BENCH_oracle.json=0.3")
	if err != nil {
		t.Fatal(err)
	}
	if m["BENCH_obs.json"] != 0.5 || m["BENCH_oracle.json"] != 0.3 {
		t.Fatalf("overrides = %v", m)
	}
	for _, bad := range []string{"noequals", "a=1.5", "a=-0.1", "a=x"} {
		if _, err := parseOverrides(bad); err == nil {
			t.Errorf("parseOverrides(%q) accepted", bad)
		}
	}
}

func TestRenderTableMentionsVerdict(t *testing.T) {
	rows := []row{{artifact: "a.json", metric: "x_per_sec", base: 100, fresh: 50, tol: 0.2, status: statusRegressed}}
	out := renderTable(rows, true)
	if !strings.Contains(out, "regression") || !strings.Contains(out, "x_per_sec") || !strings.Contains(out, "-50.0%") {
		t.Fatalf("table missing expected cells:\n%s", out)
	}
}
