// Command benchgate is the CI bench-regression gate: it diffs freshly
// produced bench-result JSON artifacts (the BENCH_*.json files cmd/spebench
// emits via -bench-json) against committed baselines and fails when any
// throughput metric regressed beyond tolerance.
//
// Usage:
//
//	benchgate [-baseline dir] [-fresh dir] [-tolerance 0.20]
//	          [-tolerances artifact=frac,...] [-summary path]
//	          artifact.json ...
//
// For each named artifact, the file is read from both the -baseline and
// -fresh directories and every numeric metric whose key ends in _per_sec
// and is present in both documents is compared. A metric regresses when
//
//	fresh < baseline * (1 - tolerance)
//
// with the tolerance taken from the artifact's -tolerances override when
// one is given and from -tolerance (default 0.20, i.e. a 20% haircut,
// absorbing CI runner noise) otherwise. Metrics only present on one side
// are reported as skipped, never failed — adding a new metric to an
// experiment must not break the gate before its baseline is re-recorded.
//
// The comparison is rendered as a GitHub-flavored markdown table on
// stdout (append it to $GITHUB_STEP_SUMMARY in CI); -summary writes the
// same table to a file as well. The exit status is 1 when any metric
// regressed, 2 on usage or I/O errors, and 0 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(gateMain(os.Args[1:], os.Stdout))
}

func gateMain(args []string, stdout *os.File) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	baseline := fs.String("baseline", "baseline", "directory holding the committed baseline artifacts")
	fresh := fs.String("fresh", ".", "directory holding the freshly produced artifacts")
	tolerance := fs.Float64("tolerance", 0.20, "default allowed fractional regression per metric")
	overrides := fs.String("tolerances", "", "per-artifact overrides, e.g. BENCH_obs.json=0.5,BENCH_oracle.json=0.3")
	summary := fs.String("summary", "", "also write the markdown comparison table to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no artifacts named; usage: benchgate [flags] artifact.json ...")
		return 2
	}
	perArtifact, err := parseOverrides(*overrides)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		return 2
	}

	var rows []row
	regressed := false
	for _, name := range fs.Args() {
		tol := *tolerance
		if t, ok := perArtifact[name]; ok {
			tol = t
		}
		artRows, err := compareArtifact(filepath.Join(*baseline, name), filepath.Join(*fresh, name), name, tol)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", name, err)
			return 2
		}
		for _, r := range artRows {
			if r.status == statusRegressed {
				regressed = true
			}
		}
		rows = append(rows, artRows...)
	}

	table := renderTable(rows, regressed)
	fmt.Fprint(stdout, table)
	if *summary != "" {
		if err := os.WriteFile(*summary, []byte(table), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			return 2
		}
	}
	if regressed {
		fmt.Fprintln(os.Stderr, "benchgate: FAIL: bench regression beyond tolerance")
		return 1
	}
	return 0
}

// row is one metric's comparison outcome.
type row struct {
	artifact string
	metric   string
	base     float64
	fresh    float64
	tol      float64
	status   status
}

type status int

const (
	statusOK status = iota
	statusRegressed
	statusSkipped // metric present on only one side
)

func (s status) String() string {
	switch s {
	case statusRegressed:
		return "❌ regressed"
	case statusSkipped:
		return "– skipped"
	}
	return "✅ ok"
}

// parseOverrides decodes "artifact=frac,artifact=frac".
func parseOverrides(s string) (map[string]float64, error) {
	out := make(map[string]float64)
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, frac, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad -tolerances entry %q (want artifact=fraction)", part)
		}
		f, err := strconv.ParseFloat(frac, 64)
		if err != nil || f < 0 || f >= 1 {
			return nil, fmt.Errorf("bad -tolerances fraction %q for %s (want 0 <= f < 1)", frac, name)
		}
		out[name] = f
	}
	return out, nil
}

// compareArtifact loads one artifact from both sides and compares every
// shared *_per_sec metric under the given tolerance.
func compareArtifact(basePath, freshPath, name string, tol float64) ([]row, error) {
	base, err := loadMetrics(basePath)
	if err != nil {
		return nil, err
	}
	fresh, err := loadMetrics(freshPath)
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(base)+len(fresh))
	seen := make(map[string]bool)
	for k := range base {
		keys = append(keys, k)
		seen[k] = true
	}
	for k := range fresh {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var rows []row
	for _, k := range keys {
		b, inBase := base[k]
		f, inFresh := fresh[k]
		r := row{artifact: name, metric: k, base: b, fresh: f, tol: tol}
		switch {
		case !inBase || !inFresh:
			r.status = statusSkipped
		case f < b*(1-tol):
			r.status = statusRegressed
		default:
			r.status = statusOK
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// loadMetrics reads a bench JSON document and keeps its numeric
// throughput metrics (keys ending in _per_sec).
func loadMetrics(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64)
	for k, v := range doc {
		if !strings.HasSuffix(k, "_per_sec") {
			continue
		}
		if f, ok := v.(float64); ok {
			out[k] = f
		}
	}
	return out, nil
}

// renderTable formats the comparison as a GitHub-flavored markdown table.
func renderTable(rows []row, regressed bool) string {
	var sb strings.Builder
	verdict := "✅ no bench regressions beyond tolerance"
	if regressed {
		verdict = "❌ bench regression beyond tolerance"
	}
	fmt.Fprintf(&sb, "### Bench gate: %s\n\n", verdict)
	sb.WriteString("| Artifact | Metric | Baseline | Fresh | Δ | Tolerance | Status |\n")
	sb.WriteString("|---|---|---:|---:|---:|---:|---|\n")
	for _, r := range rows {
		delta := "n/a"
		baseS, freshS := "n/a", "n/a"
		if r.status != statusSkipped {
			baseS = fmt.Sprintf("%.1f", r.base)
			freshS = fmt.Sprintf("%.1f", r.fresh)
			if r.base != 0 {
				delta = fmt.Sprintf("%+.1f%%", 100*(r.fresh-r.base)/r.base)
			}
		} else if r.base != 0 {
			baseS = fmt.Sprintf("%.1f", r.base)
		} else if r.fresh != 0 {
			freshS = fmt.Sprintf("%.1f", r.fresh)
		}
		fmt.Fprintf(&sb, "| %s | %s | %s | %s | %s | -%.0f%% | %s |\n",
			r.artifact, r.metric, baseS, freshS, delta, 100*r.tol, r.status)
	}
	return sb.String()
}
