// Command spebench regenerates the paper's tables and figures (see
// DESIGN.md §5 for the experiment index and EXPERIMENTS.md for recorded
// results).
//
// Usage:
//
//	spebench [-quick] [-workers N] [-checkpoint path]
//	         [-schedule fifo|coverage|region] [-target-shard-ms N]
//	         [-oracle tree|bytecode] [-dispatch threaded|switch]
//	         [-oracle-batch=false] [-backend-dispatch threaded|switch]
//	         [-backend-batch=false] [-paranoid] [-bench-json path]
//	         [-cpuprofile path] [-memprofile path]
//	         [-status-addr host:port] [-progress 30s] [experiment...]
//
// where experiment is any of: table1 table2 table3 table4 fig8 fig9 fig10
// example6 variants backend oracle obs fabric schedule. With no
// arguments, all experiments run in order.
// -workers sizes the campaign engine's worker pool (0 = GOMAXPROCS; the
// tables are identical at any setting), -checkpoint makes campaign
// experiments persist resumable progress, -schedule selects the shard
// dispatch policy (coverage drains novel files first, region scores each
// file's scheduling regions independently; tables are unaffected), and -target-shard-ms enables adaptive shard sizing.
// -oracle selects the campaign reference engine (bytecode, the default
// skeleton-compiled UB-checking VM, or tree, the historical tree-walking
// interpreter; tables are identical either way — the oracle experiment
// measures both regardless of the flag). -dispatch selects the bytecode
// VM's instruction dispatch engine (threaded, the default fused and
// specialized handler table, or switch, the monolithic opcode switch
// baseline) and -oracle-batch=false disables batched shard execution;
// tables are identical under any combination, and the oracle experiment
// measures both axes regardless of the flags. -backend-dispatch selects
// the compiled-binary minicc VM's dispatch engine the same way, and
// -backend-batch=false disables the batched per-config compiler walk
// inside batched shards; tables are identical under any combination, and
// the backend experiment measures both axes regardless of the flags.
// -paranoid cross-checks the
// AST-resident instantiation per variant (render+reparse+binding
// assertion; for the backend experiment it also checks every patched IR
// template against a fresh lowering, and for the oracle experiment every
// bytecode verdict against the tree-walker), and -bench-json makes the
// variants, backend, and oracle experiments write their variants/sec
// results (BENCH_variants.json, BENCH_backend.json, and BENCH_oracle.json
// in CI); when a single invocation runs more than one experiment, the
// experiment name is inserted before the extension so the results don't
// overwrite each other.
// -cpuprofile and -memprofile write pprof profiles covering the whole
// invocation (CPU profile over every experiment run; heap profile at
// exit), so the next bottleneck hunt needs no ad-hoc patches.
// -status-addr serves live campaign telemetry over HTTP for the whole
// invocation (/metrics, /status, /events, /debug/pprof/ — see
// docs/OBSERVABILITY.md) and -progress prints a one-line campaign ticker
// to stderr at the given interval; both are observational only and leave
// every table and bench result byte-identical. The obs experiment
// measures exactly that: telemetry-on vs telemetry-off campaign
// throughput plus report equivalence (BENCH_obs.json in CI). The fabric
// experiment runs the same campaign through a loopback HTTP
// coordinator/worker fabric versus the in-process engine, asserting the
// reports are byte-identical and recording both throughputs
// (BENCH_fabric.json in CI; see docs/DISTRIBUTED.md). The schedule
// experiment runs the same single-file campaign under the fifo, coverage,
// and region dispatch policies, asserting byte-identical reports and
// recording how many variants each policy needs to reach full compiler
// coverage (BENCH_schedule.json in CI; the region scheduler's win comes
// from probing every region of examples/regions/large.c early).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"spe/internal/campaign"
	"spe/internal/experiments"
	"spe/internal/obs"
)

func main() {
	// benchMain owns the profiling defers: os.Exit here (after it
	// returns) never truncates a CPU profile or skips the heap snapshot,
	// even when an experiment fails — failed runs are exactly the ones
	// worth profiling.
	os.Exit(benchMain())
}

func benchMain() int {
	quick := flag.Bool("quick", false, "use a reduced scale for a fast run")
	workers := flag.Int("workers", 0, "campaign worker pool size (0 = GOMAXPROCS); results are identical at any setting")
	checkpoint := flag.String("checkpoint", "", "persist campaign progress to this path (campaign experiments only)")
	schedule := flag.String("schedule", "", "campaign shard dispatch policy: fifo (default), coverage, or region; tables are identical either way")
	targetShardMs := flag.Int("target-shard-ms", 0, "adaptive campaign shard sizing toward this duration (0 = fixed shards)")
	oracle := flag.String("oracle", "", "campaign reference oracle: bytecode (default) or tree; tables are identical either way")
	dispatch := flag.String("dispatch", "", "bytecode oracle instruction dispatch: threaded (default) or switch; tables are identical either way")
	oracleBatch := flag.Bool("oracle-batch", true, "batch each campaign shard's oracle runs on one checked-out VM (disable as baseline; tables are identical either way)")
	backendDispatch := flag.String("backend-dispatch", "", "compiled-binary minicc VM instruction dispatch: threaded (default) or switch; tables are identical either way")
	backendBatch := flag.Bool("backend-batch", true, "drain each compiler configuration over a batched shard's clean variants in one walk (disable as baseline; tables are identical either way)")
	paranoid := flag.Bool("paranoid", false, "cross-check the AST-resident instantiation per variant (render+reparse+binding assertion)")
	benchJSON := flag.String("bench-json", "", "write the variants experiment's result to this path as JSON")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the experiment run to this path")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile at exit to this path")
	statusAddr := flag.String("status-addr", "", "serve live campaign telemetry on this HTTP address (/metrics, /status, /events, /debug/pprof/); results stay byte-identical")
	progress := flag.Duration("progress", 0, "print a one-line campaign progress ticker to stderr at this interval (0 = off)")
	flag.Parse()
	stopProfiles, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spebench: %v\n", err)
		return 1
	}
	defer stopProfiles()
	// one Telemetry spans every experiment in the invocation: counters
	// accumulate across campaigns, /status tracks the campaign currently
	// running (the obs experiment manages its own private instance)
	var tel *campaign.Telemetry
	if *statusAddr != "" || *progress > 0 {
		tel = campaign.NewTelemetry()
	}
	if *statusAddr != "" {
		srv, err := obs.Serve(*statusAddr, tel.Handler())
		if err != nil {
			fmt.Fprintf(os.Stderr, "spebench: %v\n", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "spebench: telemetry on http://%s/\n", srv.Addr)
	}
	if *progress > 0 {
		stop := tel.StartProgressTicker(os.Stderr, *progress)
		defer stop()
	}
	scale := experiments.Scale{}
	if *quick {
		scale = experiments.Scale{
			CorpusFiles:    40,
			MaxVariants:    60,
			CoverageFiles:  10,
			CoverageVars:   10,
			CampaignCorpus: 10,
		}
	}
	scale.Workers = *workers
	scale.Schedule = *schedule
	scale.TargetShardMillis = *targetShardMs
	scale.Oracle = *oracle
	scale.Dispatch = *dispatch
	scale.NoOracleBatch = !*oracleBatch
	scale.BackendDispatch = *backendDispatch
	scale.NoBackendBatch = !*backendBatch
	scale.Paranoid = *paranoid
	scale.Telemetry = tel
	which := flag.Args()
	if len(which) == 0 {
		which = []string{"example6", "table1", "table2", "fig8", "table3", "table4", "fig10", "fig9", "generality", "variants", "backend", "oracle", "obs", "fabric", "schedule"}
	}
	for _, name := range which {
		start := time.Now()
		// one checkpoint file per experiment, so consecutive campaigns
		// in a single spebench run don't overwrite each other's state
		if *checkpoint != "" {
			scale.Checkpoint = *checkpoint + "." + name
		}
		// several experiments write a bench-json result (variants,
		// backend); when more than one runs in this invocation, derive a
		// per-experiment path so they don't overwrite each other (a
		// single-experiment run keeps the exact path, which is what CI
		// relies on for its artifact names)
		scale.BenchJSON = *benchJSON
		if *benchJSON != "" && len(which) > 1 {
			scale.BenchJSON = benchJSONFor(*benchJSON, name)
		}
		out, err := run(name, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spebench: %s: %v\n", name, err)
			return 1
		}
		fmt.Printf("==== %s (%.1fs) ====\n%s\n", name, time.Since(start).Seconds(), out)
	}
	return 0
}

// benchJSONFor inserts the experiment name before the path's extension:
// BENCH.json -> BENCH.variants.json.
func benchJSONFor(path, name string) string {
	if ext := filepath.Ext(path); ext != "" {
		return path[:len(path)-len(ext)] + "." + name + ext
	}
	return path + "." + name
}

func run(name string, scale experiments.Scale) (string, error) {
	switch name {
	case "table1":
		return experiments.Table1(scale)
	case "table2":
		return experiments.Table2(scale)
	case "table3":
		return experiments.Table3(scale)
	case "table4":
		out, _, err := experiments.Table4(scale)
		return out, err
	case "fig8":
		return experiments.Figure8(scale)
	case "fig9":
		return experiments.Figure9(scale)
	case "fig10":
		return experiments.Figure10(scale)
	case "example6":
		return experiments.Example6(), nil
	case "generality":
		return experiments.Generality(scale)
	case "variants":
		return experiments.VariantsBench(scale)
	case "backend":
		return experiments.BackendBench(scale)
	case "oracle":
		return experiments.OracleBench(scale)
	case "obs":
		return experiments.ObsBench(scale)
	case "fabric":
		return experiments.FabricBench(scale)
	case "schedule":
		return experiments.ScheduleBench(scale)
	default:
		return "", fmt.Errorf("unknown experiment %q", name)
	}
}
