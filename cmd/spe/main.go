// Command spe is the skeletal-program-enumeration tool: it derives the
// skeleton of a C file, reports its statistics, counts its enumeration sets
// under the naive, paper, and canonical algorithms, and enumerates
// non-alpha-equivalent variants.
//
// Usage:
//
//	spe stats     file.c             report Table-2 style statistics
//	spe skeleton  file.c             print the skeleton with numbered holes
//	spe count     file.c             print naive/paper/canonical counts
//	spe canon     file.c             print the alpha-canonical form
//	spe enumerate [-n N] [-naive] [-inter] file.c
//	                                 print variants (default: canonical,
//	                                 intra-procedural, all of them)
package main

import (
	"flag"
	"fmt"
	"os"

	"spe/internal/alpha"
	"spe/internal/cc"
	"spe/internal/skeleton"
	"spe/internal/spe"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	n := fs.Int("n", 0, "maximum number of variants to print (0 = all)")
	naive := fs.Bool("naive", false, "use naive enumeration instead of canonical")
	inter := fs.Bool("inter", false, "inter-procedural granularity")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 1 {
		usage()
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	f, err := cc.Parse(string(data))
	if err != nil {
		fatal(err)
	}
	prog, err := cc.Analyze(f)
	if err != nil {
		fatal(err)
	}
	sk, err := skeleton.Build(prog)
	if err != nil {
		fatal(err)
	}
	gran := spe.Intra
	if *inter {
		gran = spe.Inter
	}

	switch cmd {
	case "stats":
		st := sk.ComputeStats()
		fmt.Printf("holes:      %d\n", st.Holes)
		fmt.Printf("scopes:     %d\n", st.Scopes)
		fmt.Printf("functions:  %d\n", st.Funcs)
		fmt.Printf("types:      %d\n", st.Types)
		fmt.Printf("vars/hole:  %.2f\n", st.Vars)
		fmt.Printf("groups:     %d\n", len(sk.Groups))
	case "skeleton":
		fmt.Println(sk.String())
	case "canon":
		fmt.Print(alpha.CanonicalizeSkeleton(sk))
	case "count":
		for _, m := range []spe.Mode{spe.ModeNaive, spe.ModePaper, spe.ModeCanonical} {
			c := spe.Count(sk, spe.Options{Mode: m, Granularity: gran})
			fmt.Printf("%-10s %s\n", m.String()+":", c.String())
		}
	case "enumerate":
		mode := spe.ModeCanonical
		if *naive {
			mode = spe.ModeNaive
		}
		count, err := spe.Enumerate(sk, spe.Options{Mode: mode, Granularity: gran}, func(v spe.Variant) bool {
			fmt.Printf("/* variant %d */\n%s\n", v.Index+1, v.Source)
			return *n == 0 || v.Index+1 < *n
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "enumerated %d variants\n", count)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: spe {stats|skeleton|count|canon|enumerate} [-n N] [-naive] [-inter] file.c")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spe:", err)
	os.Exit(1)
}
