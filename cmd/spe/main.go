// Command spe is the skeletal-program-enumeration tool: it derives the
// skeleton of a C file, reports its statistics, counts its enumeration sets
// under the naive, paper, and canonical algorithms, and enumerates
// non-alpha-equivalent variants.
//
// Usage:
//
//	spe stats     file.c             report Table-2 style statistics
//	spe skeleton  file.c             print the skeleton with numbered holes
//	spe count     file.c             print naive/paper/canonical counts
//	spe canon     file.c             print the alpha-canonical form
//	spe enumerate [-n N] [-naive] [-inter] file.c
//	                                 print variants (default: canonical,
//	                                 intra-procedural, all of them)
//	spe campaign [-workers N] [-checkpoint path] [-variants N]
//	             [-versions list] [-schedule fifo|coverage|region]
//	             [-target-shard-ms N] [-curve] [-reduce] [-inter]
//	             [-oracle tree|bytecode] [-dispatch threaded|switch]
//	             [-oracle-batch=false] [-backend-dispatch threaded|switch]
//	             [-backend-batch=false] [-paranoid] [-render-path]
//	             [-backend-reuse=false] [-status-addr host:port]
//	             [-progress 30s] [-cpuprofile path] [-memprofile path]
//	             [-serve host:port | -connect host:port]
//	             [-lease-timeout 30s] [-max-retries N]
//	             [file.c ...]
//	                                 run a parallel differential-testing
//	                                 campaign (default corpus: the bundled
//	                                 seed programs); with -checkpoint, an
//	                                 existing checkpoint is resumed;
//	                                 -schedule=coverage dispatches shards
//	                                 by expected coverage novelty,
//	                                 -schedule=region scores each file's
//	                                 scheduling regions (contiguous
//	                                 hole-group ranges of its walk)
//	                                 independently and drains the novel
//	                                 ones first, and -target-shard-ms
//	                                 sizes shard batches adaptively (all
//	                                 three leave the report byte-identical
//	                                 to fifo order);
//	                                 variants are instantiated in place on
//	                                 AST templates and executed on pooled
//	                                 backends (skeleton-compiled bytecode
//	                                 reference oracle, reusable interpreter
//	                                 machines, skeleton-keyed compiler IR
//	                                 templates) — -oracle=tree restores the
//	                                 tree-walking reference interpreter,
//	                                 -dispatch=switch restores the bytecode
//	                                 VM's monolithic opcode switch (the
//	                                 default threaded engine dispatches
//	                                 through a fused, specialized handler
//	                                 table), -oracle-batch=false disables
//	                                 batched shard execution (one oracle
//	                                 VM checkout per shard instead of
//	                                 per variant), -backend-dispatch=switch
//	                                 restores the compiled-binary VM's
//	                                 monolithic opcode switch (the default
//	                                 threaded engine dispatches the fused
//	                                 minicc IR through a handler table),
//	                                 -backend-batch=false disables the
//	                                 batched per-config compiler walk
//	                                 inside batched shards,
//	                                 -paranoid cross-checks every
//	                                 instantiation against a fresh
//	                                 render+reparse, every patched IR
//	                                 template against a fresh lowering, and
//	                                 every bytecode oracle verdict against
//	                                 the tree-walker, -render-path restores
//	                                 the historical text pipeline, and
//	                                 -backend-reuse=false runs the backends
//	                                 cold (all four keep reports
//	                                 byte-identical); -status-addr serves
//	                                 live telemetry over HTTP (/metrics in
//	                                 Prometheus text format, /status as
//	                                 JSON, /events as an SSE stream of
//	                                 findings and coverage points, and
//	                                 /debug/pprof/), -progress prints a
//	                                 one-line ticker to stderr at the given
//	                                 interval, and -cpuprofile/-memprofile
//	                                 write pprof profiles of the campaign —
//	                                 all of them observational only: the
//	                                 report on stdout stays byte-identical
//	                                 with or without them (see
//	                                 docs/OBSERVABILITY.md); -serve runs
//	                                 this process as a fabric coordinator
//	                                 leasing shard tasks over HTTP to
//	                                 -connect worker processes (the merged
//	                                 report stays byte-identical to an
//	                                 in-process run under any worker fleet,
//	                                 crash, or retry — see
//	                                 docs/DISTRIBUTED.md), with
//	                                 -lease-timeout bounding how long a
//	                                 worker holds a shard and -max-retries
//	                                 bounding re-dispatches before the
//	                                 campaign fails; SIGINT checkpoints
//	                                 merged progress (with -checkpoint) and
//	                                 exits cleanly in every mode
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"spe/internal/alpha"
	"spe/internal/campaign"
	"spe/internal/cc"
	"spe/internal/corpus"
	"spe/internal/fabric"
	"spe/internal/obs"
	"spe/internal/skeleton"
	"spe/internal/spe"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	if cmd == "campaign" {
		runCampaign(os.Args[2:])
		return
	}
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	n := fs.Int("n", 0, "maximum number of variants to print (0 = all)")
	naive := fs.Bool("naive", false, "use naive enumeration instead of canonical")
	inter := fs.Bool("inter", false, "inter-procedural granularity")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 1 {
		usage()
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	f, err := cc.Parse(string(data))
	if err != nil {
		fatal(err)
	}
	prog, err := cc.Analyze(f)
	if err != nil {
		fatal(err)
	}
	sk, err := skeleton.Build(prog)
	if err != nil {
		fatal(err)
	}
	gran := spe.Intra
	if *inter {
		gran = spe.Inter
	}

	switch cmd {
	case "stats":
		st := sk.ComputeStats()
		fmt.Printf("holes:      %d\n", st.Holes)
		fmt.Printf("scopes:     %d\n", st.Scopes)
		fmt.Printf("functions:  %d\n", st.Funcs)
		fmt.Printf("types:      %d\n", st.Types)
		fmt.Printf("vars/hole:  %.2f\n", st.Vars)
		fmt.Printf("groups:     %d\n", len(sk.Groups))
	case "skeleton":
		fmt.Println(sk.String())
	case "canon":
		fmt.Print(alpha.CanonicalizeSkeleton(sk))
	case "count":
		for _, m := range []spe.Mode{spe.ModeNaive, spe.ModePaper, spe.ModeCanonical} {
			c := spe.Count(sk, spe.Options{Mode: m, Granularity: gran})
			fmt.Printf("%-10s %s\n", m.String()+":", c.String())
		}
	case "enumerate":
		mode := spe.ModeCanonical
		if *naive {
			mode = spe.ModeNaive
		}
		count, err := spe.Enumerate(sk, spe.Options{Mode: mode, Granularity: gran}, func(v spe.Variant) bool {
			fmt.Printf("/* variant %d */\n%s\n", v.Index+1, v.Source)
			return *n == 0 || v.Index+1 < *n
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "enumerated %d variants\n", count)
	default:
		usage()
	}
}

// runCampaign drives the sharded campaign engine from the command line.
// An existing -checkpoint file is resumed; otherwise a fresh campaign
// starts (and, with -checkpoint set, persists its progress there).
// Errors funnel through campaignMain's return value rather than fatal so
// the telemetry server, progress ticker, and pprof profiles always wind
// down cleanly (a truncated CPU profile is worthless).
func runCampaign(args []string) {
	if err := campaignMain(args); err != nil {
		fatal(err)
	}
}

func campaignMain(args []string) error {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS); any value yields identical reports")
	checkpoint := fs.String("checkpoint", "", "periodically persist campaign state to this path; resumed if it exists")
	variants := fs.Int("variants", 200, "maximum enumerated variants tested per file")
	versions := fs.String("versions", "trunk", "comma-separated compiler versions under test")
	schedule := fs.String("schedule", campaign.ScheduleFIFO, "shard dispatch policy: fifo (enumeration order), coverage (drain novel files first), or region (score each file's regions independently); same final report either way")
	targetShardMs := fs.Int("target-shard-ms", 0, "adaptive shard sizing: batch dispatches toward this duration (0 = fixed shards)")
	curve := fs.Bool("curve", false, "record and print the coverage-over-time curve to stderr (under fifo this enables coverage collection)")
	reduce := fs.Bool("reduce", false, "delta-debug each finding's sample test case")
	inter := fs.Bool("inter", false, "inter-procedural granularity")
	oracle := fs.String("oracle", campaign.OracleBytecode, "reference oracle: bytecode (skeleton-compiled UB-checking bytecode VM) or tree (historical tree-walking interpreter); reports are byte-identical either way")
	dispatch := fs.String("dispatch", campaign.DispatchThreaded, "bytecode oracle instruction dispatch: threaded (fused, specialized handler table) or switch (monolithic opcode switch); reports are byte-identical either way")
	oracleBatch := fs.Bool("oracle-batch", true, "batch each shard's oracle runs on one checked-out VM, re-patching moved holes between runs (same report; disable as baseline or to bisect)")
	backendDispatch := fs.String("backend-dispatch", campaign.BackendDispatchThreaded, "compiled-binary VM instruction dispatch: threaded (fused handler table) or switch (monolithic opcode switch); reports are byte-identical either way")
	backendBatch := fs.Bool("backend-batch", true, "inside a batched shard, drain each compiler configuration over all clean variants through one batched walk (same report; disable as baseline or to bisect)")
	paranoid := fs.Bool("paranoid", false, "cross-check every AST-instantiated variant against a fresh render+reparse, every patched IR template against a fresh lowering, and (with -oracle=bytecode) every bytecode oracle verdict against the tree-walking interpreter (debug mode; slower)")
	renderPath := fs.Bool("render-path", false, "use the historical render+reparse pipeline instead of AST-resident instantiation (baseline; same report)")
	backendReuse := fs.Bool("backend-reuse", true, "reuse pooled backend state across variants: interpreter machine pooling and skeleton-keyed compiler IR templates (same report; disable as baseline or to bisect)")
	statusAddr := fs.String("status-addr", "", "serve live telemetry on this HTTP address (/metrics, /status, /events, /debug/pprof/); the report stays byte-identical")
	progress := fs.Duration("progress", 0, "print a one-line progress ticker to stderr at this interval (0 = off)")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the campaign to this path")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile at exit to this path")
	serve := fs.String("serve", "", "run as a fabric coordinator on this HTTP address, leasing shard tasks to -connect workers instead of executing locally (same report as an in-process run)")
	connect := fs.String("connect", "", "run as a fabric worker against the coordinator at this address; the campaign config comes from the coordinator, so only -workers and the telemetry flags apply")
	leaseTimeout := fs.Duration("lease-timeout", 30*time.Second, "(with -serve) how long a worker holds a leased shard before it is re-leased elsewhere")
	maxRetries := fs.Int("max-retries", 3, "(with -serve) how many re-dispatches one shard may consume after expiries or worker failures before the campaign fails (-1 = unlimited)")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *paranoid && *renderPath {
		// the cross-check validates AST-resident instantiation; on the
		// render path there is nothing to check, so reject the combination
		// instead of silently ignoring -paranoid
		return fmt.Errorf("-paranoid cross-checks the AST instantiation path and cannot be combined with -render-path")
	}
	if *serve != "" && *connect != "" {
		return fmt.Errorf("-serve and -connect are mutually exclusive (one process is either the coordinator or a worker)")
	}
	// SIGINT/SIGTERM cancel the campaign context: the engine (or fabric
	// coordinator) checkpoints its merged prefix and exits cleanly instead
	// of abandoning in-flight progress
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	stopProfiles, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer stopProfiles()
	// telemetry is observational only: the campaign runs identically (and
	// reports byte-identically) whether tel is attached or nil
	var tel *campaign.Telemetry
	if *statusAddr != "" || *progress > 0 {
		tel = campaign.NewTelemetry()
	}
	if *statusAddr != "" {
		srv, err := obs.Serve(*statusAddr, tel.Handler())
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "spe: telemetry on http://%s/ (metrics, status, events, debug/pprof)\n", srv.Addr)
	}
	if *progress > 0 {
		stop := tel.StartProgressTicker(os.Stderr, *progress)
		defer stop()
	}
	if *connect != "" {
		// worker mode: the campaign (corpus, settings, checkpointing) is
		// the coordinator's; this process only drains shard leases
		if fs.NArg() > 0 || *checkpoint != "" {
			return fmt.Errorf("-connect workers take no corpus files or -checkpoint (the coordinator owns the campaign)")
		}
		host, _ := os.Hostname()
		w := &fabric.Worker{
			Transport:   fabric.Dial(*connect),
			ID:          fmt.Sprintf("%s-%d", host, os.Getpid()),
			Parallelism: workerParallelism(*workers),
		}
		fmt.Fprintf(os.Stderr, "spe: worker %s draining shards from %s\n", w.ID, *connect)
		return w.Run(ctx)
	}
	if *checkpoint != "" {
		_, err := os.Stat(*checkpoint)
		switch {
		case err == nil:
			// the checkpoint embeds the whole campaign (corpus and
			// settings); explicitly passed files would be silently
			// ignored, so reject the combination instead
			if fs.NArg() > 0 {
				return fmt.Errorf("checkpoint %s already exists; remove it or drop the corpus file arguments (a resume replays the checkpointed corpus and settings)", *checkpoint)
			}
			fmt.Fprintf(os.Stderr, "spe: resuming campaign from %s (flags other than -checkpoint and the telemetry flags are taken from the checkpoint)\n", *checkpoint)
			var rep *campaign.Report
			var err error
			if *serve != "" {
				core, coreErr := campaign.ResumeRemoteEngine(*checkpoint, tel)
				if coreErr != nil {
					return coreErr
				}
				rep, err = serveCoordinator(ctx, core, tel, *serve, *leaseTimeout, *maxRetries)
			} else {
				rep, err = campaign.ResumeTelemetry(ctx, *checkpoint, tel)
			}
			if err != nil {
				return interruptedErr(err, *checkpoint)
			}
			if *curve {
				fmt.Fprint(os.Stderr, rep.FormatCoverageCurve())
			}
			fmt.Print(rep.Format())
			return nil
		case !os.IsNotExist(err):
			return err // unreadable checkpoint: don't silently overwrite it
		}
	}
	var progs []string
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		progs = append(progs, string(data))
	}
	if len(progs) == 0 {
		progs = corpus.Seeds()
	}
	gran := spe.Intra
	if *inter {
		gran = spe.Inter
	}
	cfg := campaign.Config{
		Corpus:             progs,
		Versions:           strings.Split(*versions, ","),
		MaxVariantsPerFile: *variants,
		Granularity:        gran,
		ReduceTestCases:    *reduce,
		Workers:            *workers,
		CheckpointPath:     *checkpoint,
		Schedule:           *schedule,
		TargetShardMillis:  *targetShardMs,
		CoverageCurve:      *curve,
		Oracle:             *oracle,
		Dispatch:           *dispatch,
		NoOracleBatch:      !*oracleBatch,
		BackendDispatch:    *backendDispatch,
		NoBackendBatch:     !*backendBatch,
		Paranoid:           *paranoid,
		ForceRenderPath:    *renderPath,
		NoBackendReuse:     !*backendReuse,
		Telemetry:          tel,
	}
	var rep *campaign.Report
	if *serve != "" {
		core, err := campaign.NewRemoteEngine(cfg)
		if err != nil {
			return err
		}
		rep, err = serveCoordinator(ctx, core, tel, *serve, *leaseTimeout, *maxRetries)
		if err != nil {
			return interruptedErr(err, *checkpoint)
		}
	} else {
		var err error
		rep, err = campaign.RunContext(ctx, cfg)
		if err != nil {
			return interruptedErr(err, *checkpoint)
		}
	}
	if *curve {
		fmt.Fprint(os.Stderr, rep.FormatCoverageCurve())
	}
	fmt.Print(rep.Format())
	return nil
}

// serveCoordinator runs the fabric coordinator: it binds addr, leases
// the campaign's shard tasks to -connect workers, and waits for the
// merged report (or a failure / SIGINT, both of which checkpoint first).
func serveCoordinator(ctx context.Context, core *campaign.RemoteEngine, tel *campaign.Telemetry, addr string, leaseTimeout time.Duration, maxRetries int) (*campaign.Report, error) {
	var m *fabric.Metrics
	if tel != nil {
		m = fabric.NewMetrics(tel.Registry())
	}
	coord := fabric.NewCoordinator(core, fabric.Options{LeaseTimeout: leaseTimeout, MaxRetries: maxRetries, Metrics: m})
	srv, err := obs.Serve(addr, coord.Handler())
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "spe: coordinator on http://%s/ (campaign %s, %d of %d shard tasks remaining)\n",
		srv.Addr, coord.ID(), core.TotalTasks()-core.MergedTasks(), core.TotalTasks())
	return coord.Wait(ctx)
}

// workerParallelism maps the -workers flag onto a fabric worker's lease
// concurrency (0 keeps the in-process convention: one slot per CPU).
func workerParallelism(workers int) int {
	if workers > 0 {
		return workers
	}
	return runtime.GOMAXPROCS(0)
}

// interruptedErr dresses a SIGINT-canceled campaign in its operational
// meaning: the merged prefix is on disk when a checkpoint path is set.
func interruptedErr(err error, checkpoint string) error {
	if errors.Is(err, context.Canceled) && checkpoint != "" {
		return fmt.Errorf("campaign interrupted; merged progress checkpointed to %s (rerun with -checkpoint to resume)", checkpoint)
	}
	return err
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: spe {stats|skeleton|count|canon|enumerate|campaign} [-n N] [-naive] [-inter] file.c")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spe:", err)
	os.Exit(1)
}
