package spebench_test

import (
	"fmt"
	"math/big"
	"testing"

	"spe/internal/cc"
	"spe/internal/corpus"
	"spe/internal/minicc"
	"spe/internal/skeleton"
	"spe/internal/spe"
)

// Ablation benchmarks for the design choices called out in DESIGN.md:
// enumeration granularity (§4.3), the threshold cutoff (§5.2.1), and the
// contribution of individual optimization passes to the compiler-coverage
// signal.

func ablationCorpus(b *testing.B) []*skeleton.Skeleton {
	b.Helper()
	progs := corpus.Seeds()
	progs = append(progs, corpus.Generate(corpus.Config{N: 30, Seed: 31337})...)
	sks := make([]*skeleton.Skeleton, 0, len(progs))
	for _, src := range progs {
		f, err := cc.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		prog, err := cc.Analyze(f)
		if err != nil {
			b.Fatal(err)
		}
		sk, err := skeleton.Build(prog)
		if err != nil {
			b.Fatal(err)
		}
		sks = append(sks, sk)
	}
	return sks
}

// BenchmarkAblationGranularity compares intra- vs inter-procedural
// enumeration set sizes (the paper's §4.3 tradeoff: intra approximates the
// global solution but enumerates fewer variants per file).
func BenchmarkAblationGranularity(b *testing.B) {
	sks := ablationCorpus(b)
	var intra, inter *big.Int
	for i := 0; i < b.N; i++ {
		intra = new(big.Int)
		inter = new(big.Int)
		for _, sk := range sks {
			intra.Add(intra, spe.Count(sk, spe.Options{Mode: spe.ModeCanonical, Granularity: spe.Intra}))
			inter.Add(inter, spe.Count(sk, spe.Options{Mode: spe.ModeCanonical, Granularity: spe.Inter}))
		}
		if intra.Cmp(inter) > 0 {
			b.Fatalf("intra %s exceeds inter %s", intra, inter)
		}
	}
	logExperiment(b, "ablation-granularity",
		fmt.Sprintf("intra-procedural total: %s\ninter-procedural total: %s", intra, inter))
}

// BenchmarkAblationThreshold sweeps the per-file variant threshold and
// reports how many corpus files are retained at each cutoff (the paper
// picks 10K to retain 90%).
func BenchmarkAblationThreshold(b *testing.B) {
	sks := ablationCorpus(b)
	var lines string
	for i := 0; i < b.N; i++ {
		lines = ""
		for _, thr := range []int64{100, 1_000, 10_000, 100_000, 1_000_000} {
			kept := 0
			for _, sk := range sks {
				c := spe.Count(sk, spe.Options{Mode: spe.ModeCanonical})
				if c.Cmp(big.NewInt(thr)) <= 0 {
					kept++
				}
			}
			lines += fmt.Sprintf("threshold %8d: %d/%d files retained\n", thr, kept, len(sks))
		}
	}
	logExperiment(b, "ablation-threshold", lines)
}

// BenchmarkAblationOptLevels measures which -O levels expose which seeded
// bugs on one triggering family (the paper's Figure 10b observation that
// -O3 finds more bugs than -O1).
func BenchmarkAblationOptLevels(b *testing.B) {
	src := `
int main() {
    int v1 = 0;
    int v2 = 3;
    for (int i = 0; i < 4; i++) {
        if (i > 5) { v2 += 10 / v1; }
        v2 += i;
    }
    printf("%d\n", v2);
    return 0;
}
`
	prog := cc.MustAnalyze(src)
	var lines string
	for i := 0; i < b.N; i++ {
		lines = ""
		for _, opt := range minicc.OptLevels {
			c := &minicc.Compiler{Version: "trunk", Opt: opt, Seeded: true}
			ro := c.Run(prog, minicc.ExecConfig{})
			sym := "clean"
			switch {
			case ro.Compile.Crash != nil:
				sym = "crash " + ro.Compile.Crash.BugID
			case !ro.Compile.Ok():
				sym = "compile error"
			case !ro.Exec.Ok():
				sym = "miscompiled (trap)"
			}
			lines += fmt.Sprintf("-O%d: %s\n", opt, sym)
		}
	}
	logExperiment(b, "ablation-optlevels", lines)
}

// BenchmarkNaiveVsCanonicalEnumeration contrasts the cost of enumerating
// the naive Cartesian product against the canonical set on the motivating
// Figure 1 skeleton.
func BenchmarkNaiveVsCanonicalEnumeration(b *testing.B) {
	sk := skeleton.MustBuild(`
int a, b;
int main() {
    b = b - a;
    if (a)
        a = a - b;
    return 0;
}
`)
	b.Run("canonical", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n, err := spe.Enumerate(sk, spe.Options{Mode: spe.ModeCanonical, Granularity: spe.Inter},
				func(spe.Variant) bool { return true })
			if err != nil || n != 64 {
				b.Fatalf("n=%d err=%v", n, err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n, err := spe.Enumerate(sk, spe.Options{Mode: spe.ModeNaive, Granularity: spe.Inter},
				func(spe.Variant) bool { return true })
			if err != nil || n != 128 {
				b.Fatalf("n=%d err=%v", n, err)
			}
		}
	})
}

// TestCorpusWideInvariants sweeps structural invariants over the whole
// corpus: canonical <= paper-model naive, counts are positive, and the
// intra-procedural product never exceeds the inter-procedural count.
func TestCorpusWideInvariants(t *testing.T) {
	progs := corpus.Seeds()
	progs = append(progs, corpus.Generate(corpus.Config{N: 40, Seed: 777})...)
	for i, src := range progs {
		sk := skeleton.MustBuild(src)
		naive := spe.Count(sk, spe.Options{Mode: spe.ModeNaive})
		canon := spe.Count(sk, spe.Options{Mode: spe.ModeCanonical})
		intra := spe.Count(sk, spe.Options{Mode: spe.ModeCanonical, Granularity: spe.Intra})
		inter := spe.Count(sk, spe.Options{Mode: spe.ModeCanonical, Granularity: spe.Inter})
		if canon.Sign() <= 0 || naive.Sign() <= 0 {
			t.Errorf("corpus[%d]: non-positive counts %s/%s", i, canon, naive)
		}
		if canon.Cmp(naive) > 0 {
			t.Errorf("corpus[%d]: canonical %s exceeds naive %s", i, canon, naive)
		}
		if intra.Cmp(inter) > 0 {
			t.Errorf("corpus[%d]: intra %s exceeds inter %s", i, intra, inter)
		}
	}
}
