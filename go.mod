module spe

go 1.23
