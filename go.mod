module spe

go 1.24
